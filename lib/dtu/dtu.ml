module Engine = M3_sim.Engine
module Process = M3_sim.Process
module Store = M3_mem.Store
module Perm = M3_mem.Perm
module Fabric = M3_noc.Fabric
module Obs = M3_obs.Obs
module Event = M3_obs.Event

let src = Logs.Src.create "m3.dtu" ~doc:"data transfer unit"

module Log = (val Logs.src_log src : Logs.LOG)

(* Cycles a DTU needs to accept and decode a command. *)
let cmd_latency = 4

(* Wire size of memory-access request and ext-command packets. *)
let request_bytes = 16
let ext_cmd_bytes = 32

type send_state = {
  s_dst_pe : int;
  s_dst_ep : int;
  s_label : int64;
  s_msg_order : int;
  s_max : Endpoint.credit;
  mutable s_cur : int; (* meaningful only when s_max = Credits _ *)
}

type recv_state = {
  r_buf_addr : int;
  r_slot_order : int;
  r_slot_count : int;
  mutable r_wpos : int;
  mutable r_rpos : int;
  r_occupied : bool array;
  r_unread : bool array;
}

type mem_state = {
  m_dst_pe : int;
  m_base : int;
  m_size : int;
  m_perm : Perm.t;
}

type ep_state =
  | S_invalid
  | S_send of send_state
  | S_recv of recv_state
  | S_mem of mem_state
  | S_park of send_state
      (* send EP whose destination VPE is suspended: the kernel parked
         it to freeze outbound traffic (a retry against the old PE could
         reach whoever is placed there next). Credits and config are
         preserved; the kernel rewrites it to [S_send] with the new
         destination when the VPE resumes. *)

type t = {
  engine : Engine.t;
  fabric : Fabric.t;
  pe : int;
  spm : Store.t;
  eps : ep_state array;
  ep_waiters : unit Process.Waitq.waitq array;
  mutable privileged : bool;
  mutable failed : bool; (* pe_crash fired: core and DTU answer nothing *)
  mutable suspend_pending : bool; (* kernel asked the program to quiesce *)
  mutable suspended : bool; (* state captured; deliveries NACK "suspended" *)
  mutable parked : (t -> unit) option; (* quiesced program's continuation *)
  mutable on_quiesce : (unit -> unit) option; (* kernel's quiesce callback *)
  mutable idle_since : int option; (* cycle the program parked in a wait *)
  mutable pending_replies : int; (* sends with a reply grant still unanswered *)
  mutable cmds_accepted : int;
  mutable store_of : int -> Store.t option;
  mutable dtu_of : int -> t option;
  mutable msgs_sent : int;
  mutable msgs_received : int;
  mutable msgs_dropped : int;
  mutable credits_refunded : int;
  mutable retransmits : int;
  mutable msgs_expired : int;
  mutable mem_read : int;
  mutable mem_written : int;
}

let create engine fabric ~pe ~spm ~ep_count =
  if ep_count <= 0 then invalid_arg "Dtu.create: need at least one endpoint";
  {
    engine;
    fabric;
    pe;
    spm;
    eps = Array.make ep_count S_invalid;
    ep_waiters = Array.init ep_count (fun _ -> Process.Waitq.create ());
    privileged = true;
    failed = false;
    suspend_pending = false;
    suspended = false;
    parked = None;
    on_quiesce = None;
    idle_since = None;
    pending_replies = 0;
    cmds_accepted = 0;
    store_of = (fun _ -> None);
    dtu_of = (fun _ -> None);
    msgs_sent = 0;
    msgs_received = 0;
    msgs_dropped = 0;
    credits_refunded = 0;
    retransmits = 0;
    msgs_expired = 0;
    mem_read = 0;
    mem_written = 0;
  }

let set_resolvers t ~store_of ~dtu_of =
  t.store_of <- store_of;
  t.dtu_of <- dtu_of

let pe t = t.pe
let ep_count t = Array.length t.eps
let is_privileged t = t.privileged

let check_ep t ep =
  if ep < 0 || ep >= Array.length t.eps then
    invalid_arg (Printf.sprintf "Dtu: endpoint %d out of range" ep)

let state_of_config = function
  | Endpoint.Invalid -> S_invalid
  | Endpoint.Send s ->
    let cur = match s.credits with Endpoint.Credits n -> n | Unlimited -> 0 in
    S_send
      {
        s_dst_pe = s.dst_pe;
        s_dst_ep = s.dst_ep;
        s_label = s.label;
        s_msg_order = s.msg_order;
        s_max = s.credits;
        s_cur = cur;
      }
  | Endpoint.Receive r ->
    S_recv
      {
        r_buf_addr = r.buf_addr;
        r_slot_order = r.slot_order;
        r_slot_count = r.slot_count;
        r_wpos = 0;
        r_rpos = 0;
        r_occupied = Array.make r.slot_count false;
        r_unread = Array.make r.slot_count false;
      }
  | Endpoint.Memory m ->
    S_mem { m_dst_pe = m.dst_pe; m_base = m.base; m_size = m.size; m_perm = m.perm }

let ep_config t ~ep =
  check_ep t ep;
  match t.eps.(ep) with
  | S_invalid -> Endpoint.Invalid
  | S_send s | S_park s ->
    Endpoint.Send
      {
        dst_pe = s.s_dst_pe;
        dst_ep = s.s_dst_ep;
        label = s.s_label;
        msg_order = s.s_msg_order;
        credits =
          (match s.s_max with
          | Endpoint.Unlimited -> Endpoint.Unlimited
          | Endpoint.Credits _ -> Endpoint.Credits s.s_cur);
      }
  | S_recv r ->
    Endpoint.Receive
      {
        buf_addr = r.r_buf_addr;
        slot_order = r.r_slot_order;
        slot_count = r.r_slot_count;
      }
  | S_mem m ->
    Endpoint.Memory
      { dst_pe = m.m_dst_pe; base = m.m_base; size = m.m_size; perm = m.m_perm }

let credits t ~ep =
  check_ep t ep;
  match t.eps.(ep) with
  | S_send s | S_park s -> (
    match s.s_max with
    | Endpoint.Unlimited -> Some Endpoint.Unlimited
    | Endpoint.Credits _ -> Some (Endpoint.Credits s.s_cur))
  | S_invalid | S_recv _ | S_mem _ -> None

let set_ep t ep config = t.eps.(ep) <- state_of_config config

let config_local t ~ep config =
  check_ep t ep;
  if not t.privileged then Error Dtu_error.Not_privileged
  else begin
    set_ep t ep config;
    Ok ()
  end

(* --- suspend/quiesce checkpoints -------------------------------------- *)

(* EPs 0 and 1 are the syscall send/reply channel by platform
   convention; a program blocked there is mid-syscall and must not be
   captured (the kernel's reply would land in a snapshot instead of the
   live ringbuffer). Quiesce points therefore only fire on waits whose
   endpoints are all application-level. *)
let suspendable_ep ep = ep >= 2

(* Cooperative suspend checkpoint. When the kernel has flagged this
   DTU for suspension, the calling program parks itself here and hands
   its continuation to the kernel (via [take_parked]); the kernel fires
   it after restoring the captured state — on this DTU, or on the DTU
   of the PE the VPE migrated to. Returns the DTU the program resumed
   on, which callers thread into the rest of their wait loop. When no
   suspension is pending this is a pure no-op: no time, no events. *)
let rec quiesce_point t =
  if not t.suspend_pending || t.pending_replies > 0 then
    (* An outstanding reply grant pins the VPE to this PE: the reply is
       addressed to this DTU's ringbuffer and a capture would strand it
       in the sender's retry loop aimed at the old coordinates. The
       program quiesces at the wait after the reply lands (the reply
       itself travels with the snapshot, in the ringbuffer). *)
    t
  else
    let next =
      Process.suspend (fun resume ->
          t.suspend_pending <- false;
          t.parked <- Some resume;
          match t.on_quiesce with
          | Some f ->
            t.on_quiesce <- None;
            f ()
          | None -> ())
    in
    quiesce_point next

let suspend_pending t = t.suspend_pending
let is_suspended t = t.suspended
let idle_since t = t.idle_since
let quiesced t = t.parked <> None
let set_on_quiesce t f = t.on_quiesce <- Some f

let take_parked t =
  let p = t.parked in
  t.parked <- None;
  p

(* --- message delivery (runs at the receiving DTU) ------------------- *)

let faults t = Fabric.faults t.fabric

let refill_credits t crd_ep =
  if crd_ep >= 0 && crd_ep < Array.length t.eps then
    match t.eps.(crd_ep) with
    | S_send s | S_park s -> (
      match s.s_max with
      | Endpoint.Credits max ->
        s.s_cur <- min max (s.s_cur + 1);
        true
      | Endpoint.Unlimited -> false)
    | S_invalid | S_recv _ | S_mem _ -> false
  else false

(* A NACKed delivery hands the consumed credit back to the sending EP
   (bugfix: drops used to leak Credits n bandwidth permanently). *)
let refund_credit t ~ep = if refill_credits t ep then t.credits_refunded <- t.credits_refunded + 1

let obs_drop t ~ep ~src_pe ~msg ~reason =
  let obs = Fabric.obs t.fabric in
  if Obs.enabled obs then
    Obs.emit obs (Event.Dtu_drop { pe = t.pe; ep; src_pe; msg; reason })

(* Outcome reported back to the sending DTU: [Rejected] travels as a
   NACK packet over the fabric. *)
type deliver_result =
  | Accepted
  | Rejected of string

let deliver_message t ~dst_ep ~(header : Header.t) ~payload ~msg =
  if t.suspended then begin
    (* The endpoint set is captured in a kernel-held snapshot; the
       message must wait in the sender's retry loop until the kernel
       restores the VPE (possibly on another PE). Checked before the
       endpoint lookup — the wiped EP would otherwise answer with the
       non-retryable "no recv ep" and lose the message for good. *)
    t.msgs_dropped <- t.msgs_dropped + 1;
    obs_drop t ~ep:dst_ep ~src_pe:header.sender_pe ~msg ~reason:"suspended";
    Rejected "suspended"
  end
  else if
    M3_fault.Plan.enabled (faults t)
    && header.checksum <> Header.payload_checksum payload
  then begin
    t.msgs_dropped <- t.msgs_dropped + 1;
    obs_drop t ~ep:dst_ep ~src_pe:header.sender_pe ~msg ~reason:"corrupt";
    Log.warn (fun m ->
        m "pe%d ep%d: dropped message from pe%d (checksum mismatch)" t.pe dst_ep
          header.sender_pe);
    Rejected "corrupt"
  end
  else
    match
      if dst_ep < 0 || dst_ep >= Array.length t.eps then S_invalid
      else t.eps.(dst_ep)
    with
    | S_recv r ->
      let slot_size = Endpoint.slot_size ~slot_order:r.r_slot_order in
      if
        Header.size + Bytes.length payload > slot_size || r.r_occupied.(r.r_wpos)
      then begin
        t.msgs_dropped <- t.msgs_dropped + 1;
        let reason =
          if r.r_occupied.(r.r_wpos) then "ringbuffer full" else "oversize"
        in
        obs_drop t ~ep:dst_ep ~src_pe:header.sender_pe ~msg ~reason;
        Log.warn (fun m ->
            m "pe%d ep%d: dropped message from pe%d (%s)" t.pe dst_ep
              header.sender_pe reason);
        Rejected reason
      end
      else begin
        (* The reply credit refills only on an accepted delivery; a
           rejected reply refunds through the NACK path instead, so a
           retried reply cannot refill twice. *)
        if header.is_reply then begin
          ignore (refill_credits t header.crd_ep);
          t.pending_replies <- max 0 (t.pending_replies - 1)
        end;
        let slot = r.r_wpos in
        let addr = r.r_buf_addr + (slot * slot_size) in
        Header.write t.spm ~addr header;
        Store.write_bytes t.spm ~addr:(addr + Header.size) payload ~pos:0
          ~len:(Bytes.length payload);
        r.r_occupied.(slot) <- true;
        r.r_unread.(slot) <- true;
        r.r_wpos <- (slot + 1) mod r.r_slot_count;
        t.msgs_received <- t.msgs_received + 1;
        let obs = Fabric.obs t.fabric in
        if Obs.enabled obs then
          Obs.emit obs
            (Event.Dtu_receive
               {
                 pe = t.pe;
                 ep = dst_ep;
                 src_pe = header.sender_pe;
                 bytes = Bytes.length payload;
                 msg;
               });
        Process.Waitq.broadcast t.ep_waiters.(dst_ep) ();
        Accepted
      end
    | S_invalid | S_send _ | S_mem _ | S_park _ ->
      t.msgs_dropped <- t.msgs_dropped + 1;
      obs_drop t ~ep:dst_ep ~src_pe:header.sender_pe ~msg ~reason:"no recv ep";
      Rejected "no recv ep"

(* Failures that can clear on their own (transient loss, a momentarily
   full ringbuffer, corruption) are worth retransmitting; a message
   that does not fit the channel, or a target without a DTU, never
   improves. *)
let retryable = function
  | "oversize" | "no recv ep" | "no dtu" -> false
  | _ -> true

(* A send into a suspended DTU always retransmits — even without a
   fault plan attached — because the condition clears deterministically
   when the kernel resumes the VPE. Bounded geometric backoff so a
   resume that takes a while (the scheduler may first have to make room
   on another PE) is bridged without flooding the fabric. *)
let suspend_max_retries = 100
let suspend_backoff ~attempt = min (64 lsl min attempt 7) 8192

(* [transmit] sends one attempt; [handle_failure] runs at the sending
   DTU when the attempt's NACK arrives and either schedules a
   retransmit (bounded, exponential backoff — only with a fault plan
   attached) or gives up and refunds the credit. *)
let rec transmit t ~dst_pe ~dst_ep ~(header : Header.t) ~payload ~msg ~attempt =
  let wire = Header.size + Bytes.length payload in
  if attempt = 0 then t.msgs_sent <- t.msgs_sent + 1
  else t.retransmits <- t.retransmits + 1;
  let nack reason =
    (* The rejecting side signals the sender with a small control
       packet; control traffic is modelled as reliable. *)
    Fabric.transfer t.fabric ~src:dst_pe ~dst:t.pe ~bytes:request_bytes
      ~on_deliver:(fun () ->
        handle_failure t ~dst_pe ~dst_ep ~header ~payload ~msg ~attempt reason)
  in
  let deliver payload =
    match t.dtu_of dst_pe with
    | Some dst when not dst.failed -> (
      match deliver_message dst ~dst_ep ~header ~payload ~msg with
      | Accepted -> ()
      | Rejected reason -> nack reason)
    | Some _ | None ->
      (* A crashed DTU is indistinguishable from a missing one. *)
      t.msgs_dropped <- t.msgs_dropped + 1;
      nack "no dtu"
  in
  Fabric.transfer ~msg t.fabric ~src:t.pe ~dst:dst_pe ~bytes:wire
    ~on_fault:(fun fault ->
      match fault with
      | Fabric.Lost reason -> nack reason
      | Fabric.Corrupted ->
        (* Damage a copy; the receiving DTU's checksum check turns the
           corruption into a NACK. *)
        let damaged = Bytes.copy payload in
        M3_fault.Plan.corrupt_bytes (faults t) damaged;
        deliver damaged)
    ~on_deliver:(fun () -> deliver payload)

and handle_failure t ~dst_pe ~dst_ep ~(header : Header.t) ~payload ~msg ~attempt
    reason =
  let plan = faults t in
  let plan_retry =
    M3_fault.Plan.enabled plan && retryable reason
    && attempt < M3_fault.Plan.max_retries plan
  in
  if plan_retry || (reason = "suspended" && attempt < suspend_max_retries)
  then begin
    let backoff =
      if plan_retry then M3_fault.Plan.backoff plan ~attempt
      else suspend_backoff ~attempt
    in
    let obs = Fabric.obs t.fabric in
    if Obs.enabled obs then
      Obs.emit obs (Event.Dtu_retry { pe = t.pe; dst_pe; msg; attempt; backoff });
    if reason = "suspended" then
      (* The kernel may park or rebind the sending EP while the
         destination is captured; the retransmit must follow the EP's
         current configuration instead of the stale destination. *)
      Engine.schedule t.engine ~delay:backoff (fun () ->
          retransmit_suspended t ~dst_pe ~dst_ep ~header ~payload ~msg
            ~attempt:(attempt + 1))
    else
      Engine.schedule t.engine ~delay:backoff (fun () ->
          transmit t ~dst_pe ~dst_ep ~header ~payload ~msg ~attempt:(attempt + 1))
  end
  else begin
    if attempt > 0 then t.msgs_expired <- t.msgs_expired + 1;
    let obs = Fabric.obs t.fabric in
    if Obs.enabled obs then
      Obs.emit obs
        (Event.Dtu_nack { pe = t.pe; ep = header.crd_ep; dst_pe; msg; reason });
    Log.debug (fun m ->
        m "pe%d: giving up on msg to pe%d.ep%d after %d attempt(s) (%s)" t.pe
          dst_pe dst_ep (attempt + 1) reason);
    (* A failed reply refunds the destination's send EP (the client that
       the reply would have refilled); a failed send refunds our own. *)
    if header.is_reply then (
      match t.dtu_of dst_pe with
      | Some dst ->
        refund_credit dst ~ep:header.crd_ep;
        dst.pending_replies <- max 0 (dst.pending_replies - 1)
      | None -> ())
    else refund_credit t ~ep:header.crd_ep
  end

and retransmit_suspended t ~dst_pe ~dst_ep ~(header : Header.t) ~payload ~msg
    ~attempt =
  if header.is_reply then
    transmit t ~dst_pe ~dst_ep ~header ~payload ~msg ~attempt
  else
    match
      if header.crd_ep >= 0 && header.crd_ep < Array.length t.eps then
        t.eps.(header.crd_ep)
      else S_invalid
    with
    | S_park _ when attempt < suspend_max_retries ->
      (* Kernel froze this EP: its destination VPE is between PEs. Poll
         until the resume rewrites it. *)
      Engine.schedule t.engine ~delay:(suspend_backoff ~attempt) (fun () ->
          retransmit_suspended t ~dst_pe ~dst_ep ~header ~payload ~msg
            ~attempt:(attempt + 1))
    | S_send s ->
      transmit t ~dst_pe:s.s_dst_pe ~dst_ep:s.s_dst_ep ~header ~payload ~msg
        ~attempt
    | S_park _ | S_invalid | S_recv _ | S_mem _ ->
      transmit t ~dst_pe ~dst_ep ~header ~payload ~msg ~attempt

(* DTU command acceptance: the fixed decode latency, plus any stall or
   permanent crash an attached fault plan injects. A crash marks the
   whole PE dead — the DTU stops accepting deliveries and ext commands
   — and kills the program mid-command by raising [Process.Killed], so
   the victim never reaches its normal exit path; only the kernel's
   heartbeat prober can discover it. *)
let accept_command t =
  Process.wait cmd_latency;
  let plan = faults t in
  if M3_fault.Plan.enabled plan then begin
    t.cmds_accepted <- t.cmds_accepted + 1;
    if M3_fault.Plan.crash_now plan ~pe:t.pe ~cmd:t.cmds_accepted then begin
      t.failed <- true;
      let obs = Fabric.obs t.fabric in
      if Obs.enabled obs then Obs.emit obs (Event.Fault_pe_crash { pe = t.pe });
      Log.warn (fun m -> m "pe%d: PE crashed (fault plan)" t.pe);
      raise Process.Killed
    end;
    let extra = M3_fault.Plan.stall plan ~pe:t.pe in
    if extra > 0 then begin
      let obs = Fabric.obs t.fabric in
      if Obs.enabled obs then
        Obs.emit obs (Event.Fault_stall { pe = t.pe; cycles = extra });
      Process.wait extra
    end
  end

(* --- software-facing commands --------------------------------------- *)

let rec send ?(block = true) t ~ep ~payload ?reply () =
  check_ep t ep;
  match t.eps.(ep) with
  | S_park _ when not block ->
    (* Destination VPE is suspended and the caller would rather drop
       than wait for a resume that may never come (fire-and-forget
       notifications). *)
    Error Dtu_error.Suspended
  | S_park _ ->
    (* Destination VPE is suspended. Block until the kernel rewrites
       the EP at resume (the Config broadcast wakes the waitq); the
       caller observes only added latency. *)
    Process.Waitq.park t.ep_waiters.(ep);
    send ~block t ~ep ~payload ?reply ()
  | S_send s ->
    let size = Header.size + Bytes.length payload in
    if size > 1 lsl s.s_msg_order then Error Dtu_error.Msg_too_big
    else begin
      let has_credit =
        match s.s_max with
        | Endpoint.Unlimited -> true
        | Endpoint.Credits _ -> s.s_cur > 0
      in
      if not has_credit then Error Dtu_error.No_credits
      else begin
        (match s.s_max with
        | Endpoint.Credits _ -> s.s_cur <- s.s_cur - 1
        | Endpoint.Unlimited -> ());
        accept_command t;
        let reply_ep, reply_label, has_reply =
          match reply with
          | Some (ep', label') -> (ep', label', true)
          | None -> (0, 0L, false)
        in
        let header =
          {
            Header.length = Bytes.length payload;
            label = s.s_label;
            sender_pe = t.pe;
            crd_ep = ep;
            reply_ep;
            reply_label;
            has_reply;
            is_reply = false;
            checksum =
              (if M3_fault.Plan.enabled (faults t) then
                 Header.payload_checksum payload
               else 0);
          }
        in
        let obs = Fabric.obs t.fabric in
        let msg = Obs.next_msg obs in
        if Obs.enabled obs then
          Obs.emit obs
            (Event.Dtu_send
               {
                 pe = t.pe;
                 ep;
                 dst_pe = s.s_dst_pe;
                 dst_ep = s.s_dst_ep;
                 bytes = Bytes.length payload;
                 msg;
                 reply = false;
               });
        if has_reply then t.pending_replies <- t.pending_replies + 1;
        transmit t ~dst_pe:s.s_dst_pe ~dst_ep:s.s_dst_ep ~header
          ~payload:(Bytes.copy payload) ~msg ~attempt:0;
        Ok ()
      end
    end
  | S_invalid | S_recv _ | S_mem _ -> Error Dtu_error.Invalid_ep

let slot_addr r slot =
  r.r_buf_addr + (slot * Endpoint.slot_size ~slot_order:r.r_slot_order)

let reply t ~ep ~slot ~payload =
  check_ep t ep;
  match t.eps.(ep) with
  | S_recv r when slot >= 0 && slot < r.r_slot_count && r.r_occupied.(slot) ->
    let header = Header.read t.spm ~addr:(slot_addr r slot) in
    if not header.has_reply then Error Dtu_error.No_reply_cap
    else begin
      accept_command t;
      let reply_header =
        {
          Header.length = Bytes.length payload;
          label = header.reply_label;
          sender_pe = t.pe;
          crd_ep = header.crd_ep;
          reply_ep = 0;
          reply_label = 0L;
          has_reply = false;
          is_reply = true;
          checksum =
            (if M3_fault.Plan.enabled (faults t) then
               Header.payload_checksum payload
             else 0);
        }
      in
      (* Replying acks the slot: the reply info must not be reusable. *)
      r.r_occupied.(slot) <- false;
      r.r_unread.(slot) <- false;
      let obs = Fabric.obs t.fabric in
      let msg = Obs.next_msg obs in
      if Obs.enabled obs then
        Obs.emit obs
          (Event.Dtu_send
             {
               pe = t.pe;
               ep;
               dst_pe = header.sender_pe;
               dst_ep = header.reply_ep;
               bytes = Bytes.length payload;
               msg;
               reply = true;
             });
      transmit t ~dst_pe:header.sender_pe ~dst_ep:header.reply_ep
        ~header:reply_header ~payload:(Bytes.copy payload) ~msg ~attempt:0;
      Ok ()
    end
  | S_recv _ -> Error Dtu_error.Invalid_ep
  | S_invalid | S_send _ | S_mem _ | S_park _ -> Error Dtu_error.Invalid_ep

let fetch t ~ep =
  check_ep t ep;
  match t.eps.(ep) with
  | S_recv r ->
    let rec scan tried pos =
      if tried = r.r_slot_count then None
      else if r.r_unread.(pos) then begin
        r.r_unread.(pos) <- false;
        r.r_rpos <- (pos + 1) mod r.r_slot_count;
        let header = Header.read t.spm ~addr:(slot_addr r pos) in
        let payload =
          Store.read_bytes t.spm
            ~addr:(slot_addr r pos + Header.size)
            ~len:header.length
        in
        Some { Endpoint.slot = pos; header; payload }
      end
      else scan (tried + 1) ((pos + 1) mod r.r_slot_count)
    in
    scan 0 r.r_rpos
  | S_invalid | S_send _ | S_mem _ | S_park _ -> None

let buffered t ~ep =
  check_ep t ep;
  match t.eps.(ep) with
  | S_recv r ->
    let n = ref 0 in
    Array.iter (fun u -> if u then incr n) r.r_unread;
    !n
  | S_invalid | S_send _ | S_mem _ | S_park _ -> 0

let is_recv t ep = match t.eps.(ep) with S_recv _ -> true | _ -> false

(* A waiter woken on an EP that was a live receive EP when it parked
   and is invalid now has been revoked out from under it (Invalidate /
   Reset): re-parking would hang forever, so surface the revocation.
   An EP that was already unconfigured keeps the old behavior — the
   waiter polls again after the kernel's Config broadcast. *)
let check_revoked t ~ep ~was_recv =
  if was_recv && not (is_recv t ep) then raise (Dtu_error.Error Dtu_error.Invalid_ep)

let rec wait_msg t ~ep =
  let t = if suspendable_ep ep then quiesce_point t else t in
  match fetch t ~ep with
  | Some msg ->
    t.idle_since <- None;
    msg
  | None ->
    if suspendable_ep ep && t.idle_since = None then
      t.idle_since <- Some (Engine.now t.engine);
    let was_recv = is_recv t ep in
    Process.Waitq.park t.ep_waiters.(ep);
    check_revoked t ~ep ~was_recv;
    wait_msg t ~ep

let wait_reconfig t ~ep =
  check_ep t ep;
  Process.Waitq.park t.ep_waiters.(ep)

let rec wait_any t ~eps =
  let t =
    if List.for_all suspendable_ep eps then quiesce_point t else t
  in
  let rec poll = function
    | [] -> None
    | ep :: rest -> (
      match fetch t ~ep with
      | Some msg -> Some (ep, msg)
      | None -> poll rest)
  in
  match poll eps with
  | Some hit ->
    t.idle_since <- None;
    hit
  | None ->
    if List.for_all suspendable_ep eps && t.idle_since = None then
      t.idle_since <- Some (Engine.now t.engine);
    let was_recv = List.map (fun ep -> (ep, is_recv t ep)) eps in
    Process.suspend (fun resume ->
        (* One registration per queue, all cancelled on the first
           wakeup so no stale entry outlives the wait (they used to
           accumulate and absorb later signals). *)
        let entries = ref [] in
        let fire v =
          List.iter Process.Waitq.cancel !entries;
          resume v
        in
        entries :=
          List.map (fun ep -> Process.Waitq.register t.ep_waiters.(ep) fire) eps);
    List.iter (fun (ep, was_recv) -> check_revoked t ~ep ~was_recv) was_recv;
    wait_any t ~eps

let wait_msg_for t ~ep ~timeout =
  check_ep t ep;
  if timeout <= 0 then invalid_arg "Dtu.wait_msg_for: timeout must be positive";
  let deadline = Engine.now t.engine + timeout in
  let rec loop () =
    let t = if suspendable_ep ep then quiesce_point t else t in
    match fetch t ~ep with
    | Some msg ->
      t.idle_since <- None;
      Some msg
    | None ->
      let remaining = deadline - Engine.now t.engine in
      if remaining <= 0 then None
      else begin
        if suspendable_ep ep && t.idle_since = None then
          t.idle_since <- Some (Engine.now t.engine);
        let was_recv = is_recv t ep in
        let woke =
          Process.suspend (fun resume ->
              let entry =
                Process.Waitq.register t.ep_waiters.(ep) (fun () ->
                    resume `Signal)
              in
              Engine.schedule t.engine ~delay:remaining (fun () ->
                  (* The entry must die with the timeout, or a later
                     signal would be absorbed by a waiter that already
                     gave up. *)
                  Process.Waitq.cancel entry;
                  resume `Timeout))
        in
        check_revoked t ~ep ~was_recv;
        match woke with
        | `Signal -> loop ()
        | `Timeout -> fetch t ~ep
      end
  in
  loop ()

let wait_any_for t ~eps ~timeout =
  List.iter (fun ep -> check_ep t ep) eps;
  if timeout <= 0 then invalid_arg "Dtu.wait_any_for: timeout must be positive";
  let deadline = Engine.now t.engine + timeout in
  let rec poll = function
    | [] -> None
    | ep :: rest -> (
      match fetch t ~ep with
      | Some msg -> Some (ep, msg)
      | None -> poll rest)
  in
  let rec loop () =
    let t =
      if List.for_all suspendable_ep eps then quiesce_point t else t
    in
    match poll eps with
    | Some hit ->
      t.idle_since <- None;
      Some hit
    | None ->
      let remaining = deadline - Engine.now t.engine in
      if remaining <= 0 then None
      else begin
        if List.for_all suspendable_ep eps && t.idle_since = None then
          t.idle_since <- Some (Engine.now t.engine);
        let was_recv = List.map (fun ep -> (ep, is_recv t ep)) eps in
        let woke =
          Process.suspend (fun resume ->
              let entries = ref [] in
              let fire v =
                List.iter Process.Waitq.cancel !entries;
                resume v
              in
              entries :=
                List.map
                  (fun ep ->
                    Process.Waitq.register t.ep_waiters.(ep) (fun () ->
                        fire `Signal))
                  eps;
              Engine.schedule t.engine ~delay:remaining (fun () ->
                  fire `Timeout))
        in
        List.iter (fun (ep, was_recv) -> check_revoked t ~ep ~was_recv) was_recv;
        match woke with
        | `Signal -> loop ()
        | `Timeout -> poll eps
      end
  in
  loop ()

let ack t ~ep ~slot =
  check_ep t ep;
  match t.eps.(ep) with
  | S_recv r when slot >= 0 && slot < r.r_slot_count ->
    r.r_occupied.(slot) <- false;
    r.r_unread.(slot) <- false
  | S_recv _ | S_invalid | S_send _ | S_mem _ | S_park _ -> ()

(* --- memory endpoints ------------------------------------------------ *)

(* Memory endpoints DMA straight into the remote node's backing store
   (via [store_of]) without an event-queue hop per byte; on a
   partitioned engine that is only safe when both nodes execute on the
   same partition — otherwise the blit races with the domain
   concurrently simulating the remote node. A partitioning that splits
   a DMA pair is a host configuration error, so fail loudly instead of
   corrupting silently: message-passing traffic may cross partitions
   freely, memory endpoints may not. *)
let check_copartition t node =
  let f = t.fabric in
  if Fabric.partition_of f t.pe <> Fabric.partition_of f node then
    invalid_arg
      (Printf.sprintf
         "Dtu: memory endpoint bridges pe%d (partition %d) and node %d \
          (partition %d); direct DMA peers must share an engine partition"
         t.pe
         (Fabric.partition_of f t.pe)
         node
         (Fabric.partition_of f node))

let mem_access t ~ep ~off ~len ~need =
  check_ep t ep;
  match t.eps.(ep) with
  | S_mem m ->
    if not (Perm.subset need ~of_:m.m_perm) then Error Dtu_error.No_perm
    else if off < 0 || len < 0 || off + len > m.m_size then
      Error Dtu_error.Out_of_bounds
    else begin
      check_copartition t m.m_dst_pe;
      Ok m
    end
  | S_invalid | S_send _ | S_recv _ | S_park _ -> Error Dtu_error.Invalid_ep

let read_mem t ~ep ~off ~local ~len =
  match mem_access t ~ep ~off ~len ~need:Perm.r with
  | Error e -> Error e
  | Ok m ->
    accept_command t;
    let obs = Fabric.obs t.fabric in
    let msg = Obs.next_msg obs in
    if Obs.enabled obs then
      Obs.emit obs
        (Event.Dtu_read { pe = t.pe; mem_pe = m.m_dst_pe; bytes = len; msg });
    let iv = Process.Ivar.create () in
    Fabric.transfer ~msg t.fabric ~src:t.pe ~dst:m.m_dst_pe ~bytes:request_bytes
      ~on_deliver:(fun () ->
        Fabric.transfer ~msg t.fabric ~src:m.m_dst_pe ~dst:t.pe ~bytes:len
          ~on_deliver:(fun () ->
            let result =
              match t.store_of m.m_dst_pe with
              | Some remote ->
                Store.blit ~src:remote ~src_addr:(m.m_base + off) ~dst:t.spm
                  ~dst_addr:local ~len;
                t.mem_read <- t.mem_read + len;
                Ok ()
              | None -> Error Dtu_error.Out_of_bounds
            in
            Process.Ivar.fill iv result));
    Process.Ivar.read iv

let write_mem t ~ep ~off ~local ~len =
  match mem_access t ~ep ~off ~len ~need:Perm.w with
  | Error e -> Error e
  | Ok m ->
    accept_command t;
    (* The data leaves the SPM when the command starts. *)
    let snapshot = Store.read_bytes t.spm ~addr:local ~len in
    let obs = Fabric.obs t.fabric in
    let msg = Obs.next_msg obs in
    if Obs.enabled obs then
      Obs.emit obs
        (Event.Dtu_write { pe = t.pe; mem_pe = m.m_dst_pe; bytes = len; msg });
    let iv = Process.Ivar.create () in
    Fabric.transfer ~msg t.fabric ~src:t.pe ~dst:m.m_dst_pe
      ~bytes:(request_bytes + len)
      ~on_deliver:(fun () ->
        let result =
          match t.store_of m.m_dst_pe with
          | Some remote ->
            Store.write_bytes remote ~addr:(m.m_base + off) snapshot ~pos:0 ~len;
            t.mem_written <- t.mem_written + len;
            Ok ()
          | None -> Error Dtu_error.Out_of_bounds
        in
        Process.Ivar.fill iv result);
    Process.Ivar.read iv

(* --- external (privileged) commands ---------------------------------- *)

type ext_action =
  | Config of int * Endpoint.config
  | Invalidate of int
  | Set_privileged of bool
  | Raw_write of int * Bytes.t
  | Raw_read of int * int
  | Reset
  | Suspend
  | Park of int
  | Rebind of int * int (* ep, new destination PE *)

let apply_ext t ~from_privileged action =
  if not from_privileged then Error Dtu_error.Not_privileged
  else
    match action with
    | Config (ep, cfg) ->
      check_ep t ep;
      set_ep t ep cfg;
      (* A fresh receive EP may already have senders blocked in
         wait_msg from a previous configuration: wake them so they
         re-poll against the new state. *)
      Process.Waitq.broadcast t.ep_waiters.(ep) ();
      Ok Bytes.empty
    | Invalidate ep ->
      check_ep t ep;
      t.eps.(ep) <- S_invalid;
      Process.Waitq.broadcast t.ep_waiters.(ep) ();
      Ok Bytes.empty
    | Set_privileged v ->
      t.privileged <- v;
      Ok Bytes.empty
    | Raw_write (addr, data) ->
      Store.write_bytes t.spm ~addr data ~pos:0 ~len:(Bytes.length data);
      Ok Bytes.empty
    | Raw_read (addr, len) -> Ok (Store.read_bytes t.spm ~addr ~len)
    | Reset ->
      Array.fill t.eps 0 (Array.length t.eps) S_invalid;
      (* A hardware reset also clears the suspend machinery — the PE may
         have been freed by a suspension (flag still up) and is being
         recycled for a different VPE. All fields are already in their
         cleared state when no scheduler runs, so this costs nothing. *)
      t.suspend_pending <- false;
      t.suspended <- false;
      t.parked <- None;
      t.on_quiesce <- None;
      t.idle_since <- None;
      t.pending_replies <- 0;
      (* Same as Invalidate: blocked waiters must observe the wipe
         instead of sleeping forever on endpoints that no longer
         exist. *)
      Array.iter (fun q -> Process.Waitq.broadcast q ()) t.ep_waiters;
      Ok Bytes.empty
    | Suspend ->
      t.suspend_pending <- true;
      (* A program parked in a wait loop must wake to notice the flag
         and reach its quiesce point; running programs hit it at their
         next checkpoint. *)
      Array.iter (fun q -> Process.Waitq.broadcast q ()) t.ep_waiters;
      Ok Bytes.empty
    | Park ep -> (
      check_ep t ep;
      match t.eps.(ep) with
      | S_send s ->
        t.eps.(ep) <- S_park s;
        Ok Bytes.empty
      | S_park _ -> Ok Bytes.empty
      | S_invalid | S_recv _ | S_mem _ -> Error Dtu_error.Invalid_ep)
    | Rebind (ep, new_dst) -> (
      check_ep t ep;
      match t.eps.(ep) with
      | S_send s | S_park s ->
        (* Unparks and retargets in one step, preserving the credit
           budget exactly ([ext_config] would reset the maximum to the
           instantaneous counter and leak in-flight credits). *)
        t.eps.(ep) <- S_send { s with s_dst_pe = new_dst };
        Process.Waitq.broadcast t.ep_waiters.(ep) ();
        Ok Bytes.empty
      | S_mem m ->
        t.eps.(ep) <- S_mem { m with m_dst_pe = new_dst };
        Process.Waitq.broadcast t.ep_waiters.(ep) ();
        Ok Bytes.empty
      | S_invalid | S_recv _ -> Error Dtu_error.Invalid_ep)

let ext_command t ~target ~wire_out ~wire_back action =
  if not t.privileged then Error Dtu_error.Not_privileged
  else begin
    accept_command t;
    let iv = Process.Ivar.create () in
    let from_privileged = t.privileged in
    Fabric.transfer t.fabric ~src:t.pe ~dst:target ~bytes:wire_out
      ~on_deliver:(fun () ->
        let result =
          (* A crashed target answers nothing: the error NACK below is
             what the kernel's heartbeat prober keys on. *)
          match t.dtu_of target with
          | Some dst when not dst.failed -> apply_ext dst ~from_privileged action
          | Some _ | None -> Error Dtu_error.Invalid_ep
        in
        Fabric.transfer t.fabric ~src:target ~dst:t.pe ~bytes:wire_back
          ~on_deliver:(fun () -> Process.Ivar.fill iv result));
    Process.Ivar.read iv
  end

let unit_result = function Ok _ -> Ok () | Error e -> Error e

let ext_config t ~target ~ep config =
  unit_result
    (ext_command t ~target ~wire_out:ext_cmd_bytes ~wire_back:request_bytes
       (Config (ep, config)))

let ext_invalidate t ~target ~ep =
  unit_result
    (ext_command t ~target ~wire_out:ext_cmd_bytes ~wire_back:request_bytes
       (Invalidate ep))

let ext_set_privileged t ~target v =
  unit_result
    (ext_command t ~target ~wire_out:ext_cmd_bytes ~wire_back:request_bytes
       (Set_privileged v))

let ext_write t ~target ~addr ~payload =
  unit_result
    (ext_command t ~target
       ~wire_out:(ext_cmd_bytes + Bytes.length payload)
       ~wire_back:request_bytes
       (Raw_write (addr, Bytes.copy payload)))

let ext_read t ~target ~addr ~len =
  ext_command t ~target ~wire_out:ext_cmd_bytes ~wire_back:(request_bytes + len)
    (Raw_read (addr, len))

let ext_reset t ~target =
  unit_result
    (ext_command t ~target ~wire_out:ext_cmd_bytes ~wire_back:request_bytes
       Reset)

(* --- VPE suspend: quiesce flag + state capture/restore ---------------- *)

let ext_suspend t ~target =
  unit_result
    (ext_command t ~target ~wire_out:ext_cmd_bytes ~wire_back:request_bytes
       Suspend)

(* [ext_park t ~target ~ep] freezes a send endpoint whose destination
   VPE is being suspended. Sends block, scheduled retransmits hold; the
   kernel later rewrites the EP via [ext_config] (same or new
   destination PE), which releases them. *)
let ext_park t ~target ~ep =
  unit_result
    (ext_command t ~target ~wire_out:ext_cmd_bytes ~wire_back:request_bytes
       (Park ep))

(* [ext_rebind t ~target ~ep ~dst_pe] retargets a send or memory
   endpoint at a migrated VPE's new PE. On a parked send EP this is
   also the release: blocked senders and held retransmits resume
   against the new destination. *)
let ext_rebind t ~target ~ep ~dst_pe =
  unit_result
    (ext_command t ~target ~wire_out:ext_cmd_bytes ~wire_back:request_bytes
       (Rebind (ep, dst_pe)))

type snapshot = {
  snap_pe : int; (* PE the state was captured from *)
  snap_eps : ep_state array; (* deep copies, including live ring state *)
  snap_spm : Bytes.t;
  snap_privileged : bool;
}

let snapshot_bytes s = Bytes.length s.snap_spm

let copy_ep = function
  | S_invalid -> S_invalid
  | S_send s -> S_send { s with s_cur = s.s_cur }
  | S_park s -> S_park { s with s_cur = s.s_cur }
  | S_recv r ->
    S_recv
      {
        r with
        r_occupied = Array.copy r.r_occupied;
        r_unread = Array.copy r.r_unread;
      }
  | S_mem m -> S_mem m

(* [ext_capture t ~target] pulls the target DTU's full architectural
   state — endpoint registers including live credit counters and
   ringbuffer occupancy, plus the whole SPM (which holds the program
   image, heap and all delivered-but-unfetched messages) — over the
   NoC, then marks the target suspended and wipes its endpoints. Wire
   cost is dominated by the SPM image (8 bytes/cycle). The program
   must already be quiesced; the kernel enforces that ordering. *)
let ext_capture t ~target =
  if not t.privileged then Error Dtu_error.Not_privileged
  else begin
    accept_command t;
    let iv = Process.Ivar.create () in
    Fabric.transfer t.fabric ~src:t.pe ~dst:target ~bytes:ext_cmd_bytes
      ~on_deliver:(fun () ->
        match t.dtu_of target with
        | Some dst when not dst.failed ->
          let spm_len = Store.size dst.spm in
          let snap =
            {
              snap_pe = dst.pe;
              snap_eps = Array.map copy_ep dst.eps;
              snap_spm = Store.read_bytes dst.spm ~addr:0 ~len:spm_len;
              snap_privileged = dst.privileged;
            }
          in
          dst.suspended <- true;
          dst.idle_since <- None;
          Array.fill dst.eps 0 (Array.length dst.eps) S_invalid;
          let wire_back =
            request_bytes + spm_len
            + (Array.length snap.snap_eps * ext_cmd_bytes)
          in
          Fabric.transfer t.fabric ~src:target ~dst:t.pe ~bytes:wire_back
            ~on_deliver:(fun () -> Process.Ivar.fill iv (Ok snap))
        | Some _ | None ->
          Fabric.transfer t.fabric ~src:target ~dst:t.pe ~bytes:request_bytes
            ~on_deliver:(fun () ->
              Process.Ivar.fill iv (Error Dtu_error.Invalid_ep)));
    Process.Ivar.read iv
  end

(* [ext_restore t ~target snap] is the inverse: pushes the captured SPM
   and endpoint registers into the target DTU and clears its suspended
   flag. The target may differ from [snap.snap_pe] — that is a
   migration; endpoint configs transfer verbatim because they name
   remote PEs, not the local one. *)
let ext_restore t ~target (snap : snapshot) =
  if not t.privileged then Error Dtu_error.Not_privileged
  else begin
    accept_command t;
    let wire_out =
      ext_cmd_bytes
      + Bytes.length snap.snap_spm
      + (Array.length snap.snap_eps * ext_cmd_bytes)
    in
    let iv = Process.Ivar.create () in
    Fabric.transfer t.fabric ~src:t.pe ~dst:target ~bytes:wire_out
      ~on_deliver:(fun () ->
        let result =
          match t.dtu_of target with
          | Some dst
            when (not dst.failed)
                 && Array.length dst.eps = Array.length snap.snap_eps
                 && Bytes.length snap.snap_spm <= Store.size dst.spm ->
            Store.write_bytes dst.spm ~addr:0 snap.snap_spm ~pos:0
              ~len:(Bytes.length snap.snap_spm);
            Array.iteri
              (fun i ep -> dst.eps.(i) <- copy_ep ep)
              snap.snap_eps;
            dst.privileged <- snap.snap_privileged;
            dst.suspended <- false;
            dst.suspend_pending <- false;
            dst.idle_since <- None;
            Array.iter (fun q -> Process.Waitq.broadcast q ()) dst.ep_waiters;
            Ok ()
          | Some _ | None -> Error Dtu_error.Invalid_ep
        in
        Fabric.transfer t.fabric ~src:target ~dst:t.pe ~bytes:request_bytes
          ~on_deliver:(fun () -> Process.Ivar.fill iv result));
    Process.Ivar.read iv
  end

let failed t = t.failed

let msgs_sent t = t.msgs_sent
let msgs_received t = t.msgs_received
let msgs_dropped t = t.msgs_dropped
let credits_refunded t = t.credits_refunded
let retransmits t = t.retransmits
let msgs_expired t = t.msgs_expired
let mem_bytes_read t = t.mem_read
let mem_bytes_written t = t.mem_written

let waiters t ~ep =
  check_ep t ep;
  Process.Waitq.waiters t.ep_waiters.(ep)
