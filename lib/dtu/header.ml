module Store = M3_mem.Store

type t = {
  length : int;
  label : int64;
  sender_pe : int;
  crd_ep : int;
  reply_ep : int;
  reply_label : int64;
  has_reply : bool;
  is_reply : bool;
  checksum : int;
}

let size = 32

let flag_has_reply = 1
let flag_is_reply = 2

(* FNV-1a folded to 32 bits: a cheap end-to-end integrity check for
   injected corruption, not a cryptographic digest. The sending DTU
   stores 0 when no fault plan is attached, which keeps the serialized
   header bit-identical to the pre-checksum wire format. *)
let payload_checksum payload =
  let h = ref 0x811c9dc5 in
  Bytes.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    payload;
  !h

let write store ~addr h =
  Store.write_u32 store ~addr h.length;
  let flags =
    (if h.has_reply then flag_has_reply else 0)
    lor if h.is_reply then flag_is_reply else 0
  in
  Store.write_u8 store ~addr:(addr + 4) flags;
  Store.write_u8 store ~addr:(addr + 5) h.crd_ep;
  Store.write_u8 store ~addr:(addr + 6) h.reply_ep;
  Store.write_u8 store ~addr:(addr + 7) 0;
  Store.write_i64 store ~addr:(addr + 8) h.label;
  Store.write_i64 store ~addr:(addr + 16) h.reply_label;
  Store.write_u32 store ~addr:(addr + 24) h.sender_pe;
  Store.write_u32 store ~addr:(addr + 28) h.checksum

let read store ~addr =
  let length = Store.read_u32 store ~addr in
  let flags = Store.read_u8 store ~addr:(addr + 4) in
  {
    length;
    crd_ep = Store.read_u8 store ~addr:(addr + 5);
    reply_ep = Store.read_u8 store ~addr:(addr + 6);
    label = Store.read_i64 store ~addr:(addr + 8);
    reply_label = Store.read_i64 store ~addr:(addr + 16);
    sender_pe = Store.read_u32 store ~addr:(addr + 24);
    has_reply = flags land flag_has_reply <> 0;
    is_reply = flags land flag_is_reply <> 0;
    checksum = Store.read_u32 store ~addr:(addr + 28);
  }
