(** Errors reported by DTU commands to the software on the same PE. *)

type t =
  | Invalid_ep        (** endpoint not configured for this operation *)
  | No_credits        (** send endpoint has no credits left *)
  | Msg_too_big       (** payload exceeds the channel's slot size *)
  | No_perm           (** memory endpoint lacks the required right *)
  | Out_of_bounds     (** access outside the memory endpoint's region *)
  | No_reply_cap      (** reply requested on a message that forbids it *)
  | Not_privileged    (** external command from an unprivileged DTU *)
  | Abort             (** command aborted (endpoint reconfigured) *)
  | Suspended         (** destination VPE parked; non-blocking send refused *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Raised by blocking waits that cannot return an error value, e.g.
    {!Dtu.wait_msg} when the kernel invalidates the endpoint under the
    waiter. *)
exception Error of t
