let src = Logs.Src.create "m3.fault" ~doc:"deterministic fault injection"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  drop_prob : float;
  link_fault_prob : float;
  corrupt_prob : float;
  stall_prob : float;
  stall_cycles : int;
  max_retries : int;
  retry_base : int;
}

let default_config =
  {
    drop_prob = 0.05;
    link_fault_prob = 0.01;
    corrupt_prob = 0.0;
    stall_prob = 0.0;
    stall_cycles = 0;
    max_retries = 4;
    retry_base = 64;
  }

type t = {
  cfg : config;
  rng : M3_sim.Rng.t option; (* None <=> disabled plan *)
  mutable drops : int;
  mutable corrupts : int;
  mutable stalls : int;
}

let none = { cfg = default_config; rng = None; drops = 0; corrupts = 0; stalls = 0 }

let create ?(config = default_config) ~seed () =
  if config.drop_prob < 0. || config.link_fault_prob < 0. || config.corrupt_prob < 0. then
    invalid_arg "Plan.create: negative probability";
  if config.max_retries < 0 || config.retry_base < 0 then
    invalid_arg "Plan.create: negative retry parameter";
  { cfg = config; rng = Some (M3_sim.Rng.create ~seed); drops = 0; corrupts = 0; stalls = 0 }

let enabled t = t.rng <> None

let config t = t.cfg

type outcome =
  | Deliver
  | Drop of string
  | Corrupt

let xfer_outcome t ~src ~dst ~bytes =
  match t.rng with
  | None -> Deliver
  | Some rng ->
    (* One uniform draw per transfer keeps the schedule a pure function
       of (seed, transfer order) whatever the probabilities are. *)
    let u = M3_sim.Rng.float rng in
    let c = t.cfg in
    if u < c.drop_prob then begin
      t.drops <- t.drops + 1;
      Log.debug (fun m -> m "inject drop %d->%d (%d B)" src dst bytes);
      Drop "drop"
    end
    else if u < c.drop_prob +. c.link_fault_prob then begin
      t.drops <- t.drops + 1;
      Log.debug (fun m -> m "inject link fault %d->%d (%d B)" src dst bytes);
      Drop "link fault"
    end
    else if u < c.drop_prob +. c.link_fault_prob +. c.corrupt_prob then begin
      t.corrupts <- t.corrupts + 1;
      Log.debug (fun m -> m "inject corruption %d->%d (%d B)" src dst bytes);
      Corrupt
    end
    else Deliver

let stall t ~pe =
  match t.rng with
  | None -> 0
  | Some rng ->
    if t.cfg.stall_prob <= 0. || t.cfg.stall_cycles <= 0 then 0
    else if M3_sim.Rng.float rng < t.cfg.stall_prob then begin
      let cycles = 1 + M3_sim.Rng.int rng t.cfg.stall_cycles in
      t.stalls <- t.stalls + 1;
      Log.debug (fun m -> m "inject stall pe%d (%d cy)" pe cycles);
      cycles
    end
    else 0

let corrupt_bytes t buf =
  match t.rng with
  | None -> ()
  | Some rng ->
    let len = Bytes.length buf in
    if len > 0 then begin
      let pos = M3_sim.Rng.int rng len in
      let mask = 1 + M3_sim.Rng.int rng 255 in
      Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor mask))
    end

let backoff t ~attempt =
  if attempt < 0 then invalid_arg "Plan.backoff: negative attempt";
  let shift = min attempt 20 in
  t.cfg.retry_base * (1 lsl shift)

let max_retries t = t.cfg.max_retries

let drops_injected t = t.drops

let corrupts_injected t = t.corrupts

let stalls_injected t = t.stalls

let pp_stats ppf t =
  Format.fprintf ppf "faults: %d dropped, %d corrupted, %d stalled" t.drops t.corrupts
    t.stalls
