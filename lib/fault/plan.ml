let src = Logs.Src.create "m3.fault" ~doc:"deterministic fault injection"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  drop_prob : float;
  link_fault_prob : float;
  corrupt_prob : float;
  stall_prob : float;
  stall_cycles : int;
  crash_prob : float;
  crashes : (int * int) list;
  max_retries : int;
  retry_base : int;
}

let default_config =
  {
    drop_prob = 0.05;
    link_fault_prob = 0.01;
    corrupt_prob = 0.0;
    stall_prob = 0.0;
    stall_cycles = 0;
    crash_prob = 0.0;
    crashes = [];
    max_retries = 4;
    retry_base = 64;
  }

type t = {
  cfg : config;
  rng : M3_sim.Rng.t option; (* None <=> disabled plan *)
  mutable drops : int;
  mutable corrupts : int;
  mutable stalls : int;
  mutable crashed : int list; (* PEs whose crash already fired, newest first *)
}

let none =
  { cfg = default_config; rng = None; drops = 0; corrupts = 0; stalls = 0; crashed = [] }

let create ?(config = default_config) ~seed () =
  if config.drop_prob < 0. || config.link_fault_prob < 0. || config.corrupt_prob < 0. then
    invalid_arg "Plan.create: negative probability";
  if config.crash_prob < 0. then invalid_arg "Plan.create: negative probability";
  if config.max_retries < 0 || config.retry_base < 0 then
    invalid_arg "Plan.create: negative retry parameter";
  List.iter
    (fun (pe, after) ->
      if pe < 0 || after < 1 then invalid_arg "Plan.create: bad crash entry")
    config.crashes;
  {
    cfg = config;
    rng = Some (M3_sim.Rng.create ~seed);
    drops = 0;
    corrupts = 0;
    stalls = 0;
    crashed = [];
  }

let enabled t = t.rng <> None

let config t = t.cfg

type outcome =
  | Deliver
  | Drop of string
  | Corrupt

let xfer_outcome t ~src ~dst ~bytes =
  match t.rng with
  | None -> Deliver
  | Some rng ->
    (* One uniform draw per transfer keeps the schedule a pure function
       of (seed, transfer order) whatever the probabilities are. *)
    let u = M3_sim.Rng.float rng in
    let c = t.cfg in
    if u < c.drop_prob then begin
      t.drops <- t.drops + 1;
      Log.debug (fun m -> m "inject drop %d->%d (%d B)" src dst bytes);
      Drop "drop"
    end
    else if u < c.drop_prob +. c.link_fault_prob then begin
      t.drops <- t.drops + 1;
      Log.debug (fun m -> m "inject link fault %d->%d (%d B)" src dst bytes);
      Drop "link fault"
    end
    else if u < c.drop_prob +. c.link_fault_prob +. c.corrupt_prob then begin
      t.corrupts <- t.corrupts + 1;
      Log.debug (fun m -> m "inject corruption %d->%d (%d B)" src dst bytes);
      Corrupt
    end
    else Deliver

let stall t ~pe =
  match t.rng with
  | None -> 0
  | Some rng ->
    if t.cfg.stall_prob <= 0. || t.cfg.stall_cycles <= 0 then 0
    else if M3_sim.Rng.float rng < t.cfg.stall_prob then begin
      let cycles = 1 + M3_sim.Rng.int rng t.cfg.stall_cycles in
      t.stalls <- t.stalls + 1;
      Log.debug (fun m -> m "inject stall pe%d (%d cy)" pe cycles);
      cycles
    end
    else 0

let is_crashed t ~pe = List.mem pe t.crashed

let crashed_pes t = List.sort compare t.crashed

let crashes_injected t = List.length t.crashed

let can_crash t =
  t.rng <> None && (t.cfg.crash_prob > 0. || t.cfg.crashes <> [])

(* Whether any further crash could still fire: a probabilistic plan can
   always crash another PE; an explicit schedule is exhausted once every
   entry has fired. Used by the kernel prober to decide when to stand
   down so an otherwise-idle system can drain. *)
let more_crashes_possible t =
  t.rng <> None
  && (t.cfg.crash_prob > 0.
     || List.exists (fun (pe, _) -> not (List.mem pe t.crashed)) t.cfg.crashes)

let crash_now t ~pe ~cmd =
  match t.rng with
  | None -> false
  | Some rng ->
    if List.mem pe t.crashed then false
    else begin
      (* Explicit schedule first: checked without touching the RNG so a
         crash-free config leaves the drop/stall stream untouched. *)
      let scheduled =
        List.exists (fun (p, after) -> p = pe && cmd >= after) t.cfg.crashes
      in
      let fired =
        scheduled
        || (t.cfg.crash_prob > 0. && M3_sim.Rng.float rng < t.cfg.crash_prob)
      in
      if fired then begin
        t.crashed <- pe :: t.crashed;
        Log.debug (fun m -> m "inject pe_crash pe%d (command %d)" pe cmd)
      end;
      fired
    end

let corrupt_bytes t buf =
  match t.rng with
  | None -> ()
  | Some rng ->
    let len = Bytes.length buf in
    if len > 0 then begin
      let pos = M3_sim.Rng.int rng len in
      let mask = 1 + M3_sim.Rng.int rng 255 in
      Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor mask))
    end

let backoff t ~attempt =
  if attempt < 0 then invalid_arg "Plan.backoff: negative attempt";
  let shift = min attempt 20 in
  t.cfg.retry_base * (1 lsl shift)

let max_retries t = t.cfg.max_retries

let drops_injected t = t.drops

let corrupts_injected t = t.corrupts

let stalls_injected t = t.stalls

let pp_stats ppf t =
  Format.fprintf ppf "faults: %d dropped, %d corrupted, %d stalled, %d crashed"
    t.drops t.corrupts t.stalls (List.length t.crashed)
