(** Deterministic fault plans.

    A plan is a seeded stream of fault decisions that the NoC fabric
    and DTUs consult at well-defined points: once per message transfer
    (drop / corrupt / deliver) and once per DTU command (stall). All
    randomness comes from one {!M3_sim.Rng} seeded at [create] time, so
    the same seed over the same workload reproduces the exact same
    fault schedule and final cycle counts.

    Like the observability bus, the subsystem is zero-cost when
    disabled: {!none} answers [enabled = false] and every injection
    site is guarded on that flag, leaving the simulated cycle counts
    bit-identical to a build without the fault layer. *)

type t

type config = {
  drop_prob : float;  (** probability a message transfer is silently dropped *)
  link_fault_prob : float;
      (** probability of a link transient fault (a second, independently
          drawn drop cause — modelled as a lost packet) *)
  corrupt_prob : float;  (** probability a delivered payload is corrupted *)
  stall_prob : float;  (** probability a DTU command stalls its PE *)
  stall_cycles : int;  (** maximum extra cycles of an injected stall *)
  crash_prob : float;
      (** probability a DTU command permanently kills its PE (core and
          DTU stop answering — unlike [stall], a crash never recovers) *)
  crashes : (int * int) list;
      (** explicit crash schedule: [(pe, after)] kills [pe] on its
          [after]-th accepted DTU command. Checked without consuming
          RNG draws, so adding an entry does not perturb the
          drop/stall stream. Each PE crashes at most once. *)
  max_retries : int;  (** retransmit attempts before the DTU gives up *)
  retry_base : int;  (** backoff is [retry_base * 2^attempt] cycles *)
}

(** Drops only, no corruption or stalls: 5% drop, 1% link fault,
    4 retries with a 64-cycle base backoff. *)
val default_config : config

(** The disabled plan: [enabled] is [false], [xfer_outcome] always
    delivers, [stall] is always 0. *)
val none : t

val create : ?config:config -> seed:int -> unit -> t

val enabled : t -> bool

val config : t -> config

(** Fate of one message transfer. *)
type outcome =
  | Deliver
  | Drop of string  (** reason, e.g. ["drop"] or ["link fault"] *)
  | Corrupt

(** [xfer_outcome t ~src ~dst ~bytes] draws the fate of one message
    transfer from [src] to [dst]. Counts injected faults. *)
val xfer_outcome : t -> src:int -> dst:int -> bytes:int -> outcome

(** [stall t ~pe] draws an extra stall duration (0 when no stall) for
    one DTU command on [pe]. *)
val stall : t -> pe:int -> int

(** [crash_now t ~pe ~cmd] decides whether [pe] dies on its [cmd]-th
    accepted DTU command (1-based). A fired crash is permanent and
    recorded; a PE crashes at most once. *)
val crash_now : t -> pe:int -> cmd:int -> bool

(** [is_crashed t ~pe] is true once a [pe_crash] has fired on [pe]. *)
val is_crashed : t -> pe:int -> bool

(** PEs killed so far, ascending. *)
val crashed_pes : t -> int list

(** [can_crash t] is true when the plan is enabled and configured with
    any crash fault at all — the kernel arms its heartbeat prober only
    then, keeping crash-free plans' cycle counts untouched. *)
val can_crash : t -> bool

(** [more_crashes_possible t] is true while another crash could still
    fire (probabilistic crashes, or unfired schedule entries). *)
val more_crashes_possible : t -> bool

(** [corrupt_bytes t buf] flips one byte of [buf] in place (no-op on an
    empty buffer). *)
val corrupt_bytes : t -> Bytes.t -> unit

(** [backoff t ~attempt] is the retransmit delay in simulated cycles
    before retry number [attempt] (0-based): [retry_base * 2^attempt]. *)
val backoff : t -> attempt:int -> int

val max_retries : t -> int

(** Counters of faults injected so far. *)

val drops_injected : t -> int

val corrupts_injected : t -> int

val stalls_injected : t -> int

val crashes_injected : t -> int

val pp_stats : Format.formatter -> t -> unit
