(* Kernel VPE scheduler state: run queues, pending operations, policy
   knobs and counters.

   This module is deliberately mechanism-free — it owns the queues and
   the arithmetic, while the kernel's sweep process (which can talk to
   DTUs and to the capability store) executes the decisions. Queues are
   per core class: a VPE suspended off a general-purpose core can only
   resume on a compatible one (§4.4's heterogeneity constraint). *)

module Core_type = M3_hw.Core_type
module Process = M3_sim.Process

(* A runnable-but-not-running VPE. [Cold] has never held a PE — its
   program image is staged in DRAM and placement is a first boot.
   [Warm] carries the captured architectural state. *)
type entry =
  | Cold of { e_vpe : int; e_core : Core_type.t }
  | Warm of Vpe_image.t

let entry_vpe = function
  | Cold { e_vpe; _ } -> e_vpe
  | Warm img -> Vpe_image.vpe img

let entry_core = function
  | Cold { e_core; _ } -> e_core
  | Warm img -> Vpe_image.core img

(* Explicit requests handed to the sweep by syscall handlers, plus the
   completion signal the DTU's quiesce callback posts back. *)
type op =
  | Op_suspend of int
  | Op_resume of int
  | Op_quiesced of int

type t = {
  slice : int; (* cycles a managed VPE may hold a contended PE *)
  idle_yield : int; (* blocked-this-long VPEs yield their PE *)
  queues : (Core_type.t, entry Queue.t) Hashtbl.t;
  managed : (int, unit) Hashtbl.t; (* joined time-multiplexing *)
  placed_at : (int, int) Hashtbl.t; (* running managed vpe -> cycle placed *)
  ops : op Queue.t;
  wake : unit Process.Waitq.waitq;
  mutable suspends : int;
  mutable resumes : int;
  mutable switches : int;
  mutable preemptions : int;
}

let default_slice = 10_000
let default_idle_yield = 2_000

let create ?(slice = default_slice) ?(idle_yield = default_idle_yield) () =
  {
    slice;
    idle_yield;
    queues = Hashtbl.create 4;
    managed = Hashtbl.create 16;
    placed_at = Hashtbl.create 16;
    ops = Queue.create ();
    wake = Process.Waitq.create ();
    suspends = 0;
    resumes = 0;
    switches = 0;
    preemptions = 0;
  }

let slice t = t.slice
let idle_yield t = t.idle_yield

(* --- run queues ------------------------------------------------------- *)

let queue_for t core =
  match Hashtbl.find_opt t.queues core with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.queues core q;
    q

let enqueue t entry = Queue.push entry (queue_for t (entry_core entry))

let dequeue t ~core =
  match Hashtbl.find_opt t.queues core with
  | None -> None
  | Some q -> Queue.take_opt q

let queued t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.queues 0

let queued_for t ~core =
  match Hashtbl.find_opt t.queues core with
  | None -> 0
  | Some q -> Queue.length q

(* [remove t ~vpe] drops a killed VPE from every run queue and returns
   the warm images that were queued for it, so the caller can discard
   their parked processes and free the captured state. *)
let remove t ~vpe =
  let removed = ref [] in
  Hashtbl.iter
    (fun _ q ->
      let keep = Queue.create () in
      Queue.iter
        (fun e ->
          if entry_vpe e = vpe then begin
            match e with
            | Warm img -> removed := img :: !removed
            | Cold _ -> ()
          end
          else Queue.push e keep)
        q;
      Queue.clear q;
      Queue.transfer keep q)
    t.queues;
  Hashtbl.remove t.managed vpe;
  Hashtbl.remove t.placed_at vpe;
  !removed

(* --- pending operations ----------------------------------------------- *)

let request t op =
  Queue.push op t.ops;
  Process.Waitq.broadcast t.wake ()

let next_op t = Queue.take_opt t.ops
let pending_ops t = Queue.length t.ops

(* The sweep parks here between rounds; [request] and VPE lifecycle
   changes wake it. *)
let wait_work t = Process.Waitq.park t.wake
let wake t = Process.Waitq.broadcast t.wake ()

(* --- managed (time-multiplexed) VPEs ---------------------------------- *)

let manage t ~vpe = Hashtbl.replace t.managed vpe ()
let is_managed t ~vpe = Hashtbl.mem t.managed vpe
let managed_count t = Hashtbl.length t.managed

let note_placed t ~vpe ~at = Hashtbl.replace t.placed_at vpe at
let note_unplaced t ~vpe = Hashtbl.remove t.placed_at vpe

let placed_at t ~vpe = Hashtbl.find_opt t.placed_at vpe

(* All managed VPEs currently holding a PE, as (vpe, placed-at) sorted
   by placement cycle then id — the sweep's tick computation and the
   idle-yield scan both walk this. *)
let placed_list t =
  Hashtbl.fold (fun vpe at acc -> (at, vpe) :: acc) t.placed_at []
  |> List.sort compare
  |> List.map (fun (at, vpe) -> (vpe, at))

(* Managed VPEs currently holding a PE whose slice has expired, oldest
   placement first — the preemption candidates when the queue is
   non-empty. *)
let slice_expired t ~now =
  let expired =
    Hashtbl.fold
      (fun vpe at acc -> if now - at >= t.slice then (at, vpe) :: acc else acc)
      t.placed_at []
  in
  List.map snd (List.sort compare expired)

(* --- counters ---------------------------------------------------------- *)

let count_suspend t = t.suspends <- t.suspends + 1
let count_resume t = t.resumes <- t.resumes + 1
let count_switch t = t.switches <- t.switches + 1
let count_preemption t = t.preemptions <- t.preemptions + 1

let suspends t = t.suspends
let resumes t = t.resumes
let switches t = t.switches
let preemptions t = t.preemptions
