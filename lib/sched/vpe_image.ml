(* A suspended VPE, parked in the kernel between PEs.

   The image pairs the DTU-captured architectural state (endpoint
   registers, credits, ringbuffer occupancy, the whole SPM — see
   [M3_dtu.Dtu.ext_capture]) with the two pieces of simulation state
   that stand in for the core's register file: the quiesced program's
   process handle and the continuation that restarts it. Firing
   [img_resume] with the destination DTU is the software half of
   resume; the kernel does the hardware half ([ext_restore]) first. *)

type t = {
  img_vpe : int;
  img_core : M3_hw.Core_type.t;
  img_from_pe : int; (* PE the state was captured from *)
  img_captured_at : int; (* cycle of the capture *)
  img_snapshot : M3_dtu.Dtu.snapshot;
  img_process : M3_sim.Process.t; (* detached, parked at a quiesce point *)
  img_resume : M3_dtu.Dtu.t -> unit; (* one-shot; continue on this DTU *)
}

let vpe t = t.img_vpe
let core t = t.img_core
let from_pe t = t.img_from_pe
let captured_at t = t.img_captured_at
let snapshot t = t.img_snapshot
let bytes t = M3_dtu.Dtu.snapshot_bytes t.img_snapshot

(* Discard a parked image (the VPE was killed while suspended): the
   quiesced process must not linger as a resumable ghost. *)
let discard t = M3_sim.Process.kill t.img_process
