(** Mutex-protected hash tables for process-global registries (engine
    id / env uid keyed), making them safe to touch from concurrent
    simulations on different domains. *)

module Table : sig
  type ('k, 'v) t

  val create : int -> ('k, 'v) t
  val find_opt : ('k, 'v) t -> 'k -> 'v option
  val replace : ('k, 'v) t -> 'k -> 'v -> unit
  val add : ('k, 'v) t -> 'k -> 'v -> unit
  val remove : ('k, 'v) t -> 'k -> unit
  val mem : ('k, 'v) t -> 'k -> bool
  val length : ('k, 'v) t -> int

  (** [bindings t] is a snapshot of all bindings, in no particular
      order. *)
  val bindings : ('k, 'v) t -> ('k * 'v) list

  (** Snapshot-based: callbacks run outside the lock and may re-enter
      the table. *)
  val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit

  val fold : ('k, 'v) t -> ('k -> 'v -> 'acc -> 'acc) -> 'acc -> 'acc

  (** [remove_if t f] drops every binding satisfying [f]. *)
  val remove_if : ('k, 'v) t -> ('k -> 'v -> bool) -> unit
end
