(** Small numeric summaries used by benchmark reporting. *)

type t

val create : unit -> t

(** [add t x] records one observation. *)
val add : t -> float -> unit

val count : t -> int
val mean : t -> float

(** Sample standard deviation (0 for fewer than two observations). *)
val stddev : t -> float

val min : t -> float
val max : t -> float

(** [percentile t p] is the [p]-th percentile ([p] in [0..100], clamped)
    with linear interpolation between closest ranks: 0 observations
    yield [0.0], one observation yields that value for every [p], two
    observations interpolate between them (so [percentile t 50.0] is
    their midpoint). Fractional [p] is supported — [percentile t 99.9]
    is the tail SLO quantile. Observations are retained internally to
    support this; cost is O(n log n) on the first query after an
    [add]. *)
val percentile : t -> float -> float

(** [merge a b] is a fresh summary over the union of both sample sets
    ([a] and [b] are not modified). Order statistics of the result are
    exact, not approximated from the inputs' moments — used to
    aggregate per-worker latency into pool-level SLOs. *)
val merge : t -> t -> t

(** [of_list xs] summarizes a list of observations. *)
val of_list : float list -> t
