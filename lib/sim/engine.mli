(** Discrete-event simulation engine.

    Time is measured in clock cycles (all PEs and the NoC share one
    clock domain, as on the Tomahawk MPSoC). Events are thunks run at a
    given cycle; events scheduled for the same cycle run in FIFO
    order. *)

type t

(** [create ()] is a fresh engine at cycle 0. *)
val create : unit -> t

(** [id t] is a process-unique identifier, assigned at creation in
    increasing order. Registries that outlive a single simulation
    (e.g. the m3fs server tables) key their entries by it so that
    several engines in one process never alias each other's state. *)
val id : t -> int

(** [now t] is the current simulation time in cycles. *)
val now : t -> int

(** [schedule t ~delay f] runs [f] at cycle [now t + delay].
    @raise Invalid_argument if [delay < 0]. *)
val schedule : t -> delay:int -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f] at absolute cycle [time], which
    must not lie in the past. *)
val schedule_at : t -> time:int -> (unit -> unit) -> unit

(** [run t] processes events until the queue is empty and returns the
    final simulation time. *)
val run : t -> int

(** [run_until t ~time] processes events with timestamps [<= time];
    afterwards [now t = time] if the queue ran dry earlier. *)
val run_until : t -> time:int -> unit

(** [pending t] is the number of queued events. *)
val pending : t -> int

(** [processed t] is the total number of events executed so far. *)
val processed : t -> int
