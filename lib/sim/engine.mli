(** Discrete-event simulation engine, optionally partitioned for
    conservative parallel simulation on OCaml 5 domains.

    Time is measured in clock cycles (all PEs and the NoC share one
    clock domain, as on the Tomahawk MPSoC). Events are thunks run at a
    given cycle; events scheduled for the same cycle run in FIFO order
    within their partition.

    A partitioned engine ([create ~partitions:n]) holds one sub-engine
    (event heap + clock) per partition and advances all partitions in
    lookahead-sized windows: within a window partitions run
    independently (in parallel when [domains > 1]), and events posted
    across partitions ({!schedule_on}) are committed at window
    boundaries in deterministic (time, source partition, sequence)
    order. A seeded run therefore commits the identical event schedule
    regardless of the domain count. With the default single partition
    the engine is the classic sequential event loop, bit-for-bit. *)

type t

(** [create ()] is a fresh engine at cycle 0. [partitions] is the
    number of sub-engines (default 1); [domains] is how many OCaml
    domains execute them (default 1, clamped to [partitions]). The
    partition count is part of the simulated scenario — it determines
    the committed event schedule — while the domain count is pure
    host-side execution width. *)
val create : ?partitions:int -> ?domains:int -> unit -> t

(** [id t] is a process-unique identifier, assigned at creation in
    increasing order (atomically — engines are created from concurrent
    domains). Registries that outlive a single simulation (e.g. the
    m3fs server tables) key their entries by it so that several engines
    in one process never alias each other's state. *)
val id : t -> int

(** [partitions t] is the number of sub-engines. *)
val partitions : t -> int

(** [domains t] is the number of domains a run uses. *)
val domains : t -> int

(** [lookahead t] is the window length in cycles: the minimum latency
    of any cross-partition event. *)
val lookahead : t -> int

(** [set_lookahead t n] declares the minimum cross-partition latency
    [n >= 1]. The NoC fabric sets this to its hop latency; a
    {!schedule_on} violating it raises. *)
val set_lookahead : t -> int -> unit

(** [now t] is the current simulation time of the caller's partition
    (partition 0 when called from outside a run). *)
val now : t -> int

(** [current_partition t] is the partition the calling domain is
    executing (0 outside a run). *)
val current_partition : t -> int

(** [schedule t ~delay f] runs [f] at cycle [now t + delay] on the
    caller's partition.
    @raise Invalid_argument if [delay < 0]. *)
val schedule : t -> delay:int -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f] at absolute cycle [time], which
    must not lie in the caller's partition's past. *)
val schedule_at : t -> time:int -> (unit -> unit) -> unit

(** [schedule_on t ~partition ~time f] runs [f] at cycle [time] on
    [partition]. From a different partition mid-run this posts to the
    target's inbound queue, and [time] must respect the lookahead
    ([time >= now + lookahead]); on the home partition (or during
    single-threaded setup) it is plain {!schedule_at}. *)
val schedule_on : t -> partition:int -> time:int -> (unit -> unit) -> unit

(** [with_partition t i f] runs [f] with partition [i] as the caller's
    partition, so that [schedule]/[now]/process spawns target it. Used
    to place setup code (and its processes) onto a partition. *)
val with_partition : t -> int -> (unit -> 'a) -> 'a

(** [at_barrier t hook] registers [hook] to run on the coordinating
    domain after every window barrier of a partitioned run (and once at
    the end of a single-partition run). The observability bus uses this
    to merge per-partition event buffers deterministically. *)
val at_barrier : t -> (unit -> unit) -> unit

(** [run t] processes events until all queues are empty and returns the
    final simulation time. *)
val run : t -> int

(** [run_until t ~time] processes events with timestamps [<= time];
    afterwards every partition's clock is at least [time]. *)
val run_until : t -> time:int -> unit

(** [pending t] is the number of queued events (all partitions,
    including uncommitted inbound events). *)
val pending : t -> int

(** [processed t] is the total number of events executed so far. *)
val processed : t -> int
