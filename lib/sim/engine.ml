(* Discrete-event engine, optionally partitioned for conservative
   parallel simulation on OCaml 5 domains.

   A partitioned engine holds one sub-engine (heap + clock) per
   partition. Within a partition events run exactly as in the classic
   single-heap engine; across partitions, events are routed through
   per-partition inbound queues and committed at window boundaries.
   The window length is the engine's lookahead — the minimum latency
   of any cross-partition interaction (the NoC hop latency, on this
   platform) — so every event a partition can generate for a peer
   falls strictly beyond the window currently executing, and all
   partitions can run a window concurrently without ever seeing an
   event in their past.

   Determinism: a partition executes its own heap in (key, push-order)
   sequence regardless of how partitions are mapped onto domains, and
   inbound queues are drained in (time, source partition, source
   sequence) order, so a seeded run commits the identical event
   schedule at 1, 2 or 4 domains. *)

type inbound = {
  ib_time : int;
  ib_src : int; (* sending partition *)
  ib_seq : int; (* sender-local sequence number *)
  ib_fn : unit -> unit;
}

type partition = {
  idx : int;
  queue : (unit -> unit) Heap.t;
  mutable pnow : int;
  mutable pprocessed : int;
  inbox_lock : Mutex.t;
  mutable inbox : inbound list; (* unordered; sorted at window drain *)
  mutable out_seq : int; (* next ib_seq minted by this partition *)
}

type t = {
  id : int;
  parts : partition array;
  domains : int;
  mutable lookahead : int;
  mutable hooks : (unit -> unit) list; (* newest first *)
  mutable running : bool;
  fail_lock : Mutex.t;
  mutable failure : exn option; (* first event exception of a parallel run *)
}

(* Engine ids key registries that outlive a single simulation (the
   m3fs server tables); engines are created from concurrently running
   domains (the bench domain pool), so minting must be atomic — a
   duplicated id would silently alias two simulations' registry
   entries. *)
let next_id = Atomic.make 0

(* The partition whose events the calling domain is currently
   executing. Domain-local so that concurrent domains — sub-engines of
   one partitioned run, or independent engines on a domain pool —
   never observe each other's context. *)
let context : (t * partition) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_ctx () = !(Domain.DLS.get context)

let with_ctx t part f =
  let cell = Domain.DLS.get context in
  let saved = !cell in
  cell := Some (t, part);
  Fun.protect ~finally:(fun () -> cell := saved) f

let create ?(partitions = 1) ?(domains = 1) () =
  if partitions <= 0 then invalid_arg "Engine.create: need >= 1 partition";
  if domains <= 0 then invalid_arg "Engine.create: need >= 1 domain";
  {
    id = Atomic.fetch_and_add next_id 1;
    parts =
      Array.init partitions (fun idx ->
          {
            idx;
            queue = Heap.create ();
            pnow = 0;
            pprocessed = 0;
            inbox_lock = Mutex.create ();
            inbox = [];
            out_seq = 0;
          });
    domains = min domains partitions;
    lookahead = 1;
    hooks = [];
    running = false;
    fail_lock = Mutex.create ();
    failure = None;
  }

let id t = t.id

let partitions t = Array.length t.parts

let domains t = t.domains

let lookahead t = t.lookahead

let set_lookahead t n =
  if n < 1 then invalid_arg "Engine.set_lookahead: need >= 1";
  t.lookahead <- n

let at_barrier t f = t.hooks <- f :: t.hooks

let run_hooks t = List.iter (fun f -> f ()) (List.rev t.hooks)

(* The partition the caller belongs to: the one it is executing when
   inside an event, partition 0 otherwise (setup code before [run]).
   With one partition this is always partition 0 — the classic
   engine. *)
let home t =
  match current_ctx () with
  | Some (t', p) when t' == t -> p
  | _ -> t.parts.(0)

let current_partition t = (home t).idx

let now t = (home t).pnow

let schedule_at t ~time f =
  let p = home t in
  if time < p.pnow then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)"
         time p.pnow);
  Heap.push p.queue ~key:time f

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  let p = home t in
  Heap.push p.queue ~key:(p.pnow + delay) f

let with_partition t i f =
  if i < 0 || i >= Array.length t.parts then
    invalid_arg "Engine.with_partition: no such partition";
  with_ctx t t.parts.(i) f

let schedule_on t ~partition ~time f =
  if partition < 0 || partition >= Array.length t.parts then
    invalid_arg "Engine.schedule_on: no such partition";
  let dst = t.parts.(partition) in
  match current_ctx () with
  | Some (t', src) when t' == t && src.idx <> partition && t.running ->
    (* Cross-partition, mid-run: the destination may already be deep
       inside the window the sender is still executing, so the event
       must land beyond the current window — which the lookahead
       guarantees exactly when the caller respects it. *)
    if time < src.pnow + t.lookahead then
      invalid_arg
        (Printf.sprintf
           "Engine.schedule_on: time %d violates lookahead %d (now %d)" time
           t.lookahead src.pnow);
    let ib =
      { ib_time = time; ib_src = src.idx; ib_seq = src.out_seq; ib_fn = f }
    in
    src.out_seq <- src.out_seq + 1;
    Mutex.protect dst.inbox_lock (fun () -> dst.inbox <- ib :: dst.inbox)
  | _ ->
    (* Same partition, or single-threaded setup: plain scheduling. *)
    with_ctx t dst (fun () -> schedule_at t ~time f)

(* --- execution --------------------------------------------------------- *)

let record_failure t e =
  Mutex.protect t.fail_lock (fun () ->
      match t.failure with
      | None -> t.failure <- Some e
      | Some _ -> ())

let take_failure t =
  match t.failure with
  | None -> ()
  | Some e ->
    t.failure <- None;
    raise e

(* Commit inbound events into their heaps, in (time, src, seq) order so
   the heap's FIFO tie-break makes the schedule independent of arrival
   interleaving. Runs on the coordinating domain between windows. *)
let drain_inboxes t =
  Array.iter
    (fun p ->
      let inbound =
        Mutex.protect p.inbox_lock (fun () ->
            let l = p.inbox in
            p.inbox <- [];
            l)
      in
      match inbound with
      | [] -> ()
      | l ->
        let l =
          List.sort
            (fun a b ->
              if a.ib_time <> b.ib_time then compare a.ib_time b.ib_time
              else if a.ib_src <> b.ib_src then compare a.ib_src b.ib_src
              else compare a.ib_seq b.ib_seq)
            l
        in
        List.iter (fun ib -> Heap.push p.queue ~key:ib.ib_time ib.ib_fn) l)
    t.parts

(* Earliest uncommitted event across all partitions (inboxes already
   drained), or [max_int] when the engine ran dry. *)
let horizon t =
  Array.fold_left
    (fun acc p ->
      match Heap.min_key p.queue with Some k -> min acc k | None -> acc)
    max_int t.parts

(* Run one partition's events with keys in [.., stop): its own window.
   Exceptions are recorded, not propagated — a parallel run must reach
   its barrier so peers do not block forever. *)
let exec_window t p ~stop =
  with_ctx t p (fun () ->
      let continue = ref true in
      while !continue do
        match Heap.min_key p.queue with
        | Some k when k < stop -> (
          match Heap.pop p.queue with
          | Some (time, f) -> (
            p.pnow <- time;
            p.pprocessed <- p.pprocessed + 1;
            try f () with e -> record_failure t e)
          | None -> assert false)
        | Some _ | None -> continue := false
      done)

(* Window end for a horizon [h]: one lookahead ahead, clipped to the
   run limit (inclusive). *)
let window_stop t ~horizon:h ~limit =
  let stop = h + max 1 t.lookahead in
  if limit < max_int && stop > limit + 1 then limit + 1 else stop

let run_windows_seq t ~limit =
  let continue = ref true in
  while !continue do
    drain_inboxes t;
    let h = horizon t in
    if h = max_int || h > limit then continue := false
    else begin
      let stop = window_stop t ~horizon:h ~limit in
      Array.iter (fun p -> exec_window t p ~stop) t.parts;
      run_hooks t;
      take_failure t
    end
  done

let run_windows_par t ~limit =
  let d = t.domains in
  let count = Array.length t.parts in
  let lock = Mutex.create () in
  let start = Condition.create () in
  let finished = Condition.create () in
  (* 0 = idle, > 0 = run a window up to that stop, -1 = terminate. *)
  let order = ref 0 in
  let gen = ref 0 in
  let done_count = ref 0 in
  let exec_share w ~stop =
    let i = ref w in
    while !i < count do
      exec_window t t.parts.(!i) ~stop;
      i := !i + d
    done
  in
  let worker w () =
    let my_gen = ref 0 in
    let continue = ref true in
    while !continue do
      Mutex.lock lock;
      while !gen = !my_gen do
        Condition.wait start lock
      done;
      my_gen := !gen;
      let stop = !order in
      Mutex.unlock lock;
      if stop < 0 then continue := false
      else exec_share w ~stop;
      Mutex.lock lock;
      incr done_count;
      Condition.signal finished;
      Mutex.unlock lock
    done
  in
  let doms = Array.init (d - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  let release stop =
    Mutex.lock lock;
    done_count := 0;
    order := stop;
    incr gen;
    Condition.broadcast start;
    Mutex.unlock lock
  in
  let await () =
    Mutex.lock lock;
    while !done_count < d - 1 do
      Condition.wait finished lock
    done;
    Mutex.unlock lock
  in
  Fun.protect
    ~finally:(fun () ->
      release (-1);
      Array.iter Domain.join doms)
    (fun () ->
      let continue = ref true in
      while !continue do
        drain_inboxes t;
        let h = horizon t in
        if h = max_int || h > limit then continue := false
        else begin
          let stop = window_stop t ~horizon:h ~limit in
          release stop;
          exec_share 0 ~stop;
          await ();
          run_hooks t;
          take_failure t
        end
      done)

let run_partitioned t ~limit =
  if t.domains <= 1 then run_windows_seq t ~limit
  else run_windows_par t ~limit

let enter_run t f =
  if t.running then invalid_arg "Engine.run: engine is already running";
  t.running <- true;
  Fun.protect ~finally:(fun () -> t.running <- false) f

let step_single p =
  match Heap.pop p.queue with
  | None -> false
  | Some (time, f) ->
    p.pnow <- time;
    p.pprocessed <- p.pprocessed + 1;
    f ();
    true

let run t =
  enter_run t (fun () ->
      if Array.length t.parts = 1 then begin
        (* Classic single-heap engine: the exact pre-partitioning event
           loop, no windows, no barriers. *)
        let p = t.parts.(0) in
        with_ctx t p (fun () -> while step_single p do () done);
        run_hooks t;
        p.pnow
      end
      else begin
        run_partitioned t ~limit:max_int;
        Array.fold_left (fun acc p -> max acc p.pnow) 0 t.parts
      end)

let run_until t ~time =
  enter_run t (fun () ->
      if Array.length t.parts = 1 then begin
        let p = t.parts.(0) in
        with_ctx t p (fun () ->
            let continue = ref true in
            while !continue do
              match Heap.min_key p.queue with
              | Some key when key <= time -> ignore (step_single p)
              | Some _ | None -> continue := false
            done);
        run_hooks t
      end
      else run_partitioned t ~limit:time;
      Array.iter (fun p -> if p.pnow < time then p.pnow <- time) t.parts)

let pending t =
  Array.fold_left
    (fun acc p ->
      acc + Heap.length p.queue
      + Mutex.protect p.inbox_lock (fun () -> List.length p.inbox))
    0 t.parts

let processed t =
  Array.fold_left (fun acc p -> acc + p.pprocessed) 0 t.parts
