type t = {
  id : int;
  mutable now : int;
  mutable processed : int;
  queue : (unit -> unit) Heap.t;
}

let next_id = ref 0

let create () =
  let id = !next_id in
  incr next_id;
  { id; now = 0; processed = 0; queue = Heap.create () }

let id t = t.id

let now t = t.now

let schedule_at t ~time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)"
         time t.now);
  Heap.push t.queue ~key:time f

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) f

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.now <- time;
    t.processed <- t.processed + 1;
    f ();
    true

let run t =
  while step t do
    ()
  done;
  t.now

let run_until t ~time =
  let continue = ref true in
  while !continue do
    match Heap.min_key t.queue with
    | Some key when key <= time -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if t.now < time then t.now <- time

let pending t = Heap.length t.queue

let processed t = t.processed
