let src = Logs.Src.create "m3.sim.process" ~doc:"simulation processes"

module Log = (val Logs.src_log src : Logs.LOG)

type status =
  | Running
  | Finished
  | Failed of exn

type t = {
  name : string;
  engine : Engine.t;
  mutable state : status;
  mutable kill_requested : bool;
}

exception Killed

type _ Effect.t +=
  | Wait : t * int -> unit Effect.t
  | Suspend : t * (('a -> unit) -> unit) -> 'a Effect.t

(* The process currently executing, so that [wait]/[suspend] need no
   explicit handle. Domain-local: a process runs to its next effect
   without interleaving *on its own domain*, but other domains run
   their own processes concurrently — partitions of one parallel
   engine, or independent engines on a domain pool — and a shared ref
   would cross-wire their [wait]/[suspend] to the wrong process. *)
let current : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_current p f =
  let cell = Domain.DLS.get current in
  let saved = !cell in
  cell := Some p;
  Fun.protect ~finally:(fun () -> cell := saved) f

let self () =
  match !(Domain.DLS.get current) with
  | Some p -> p
  | None -> failwith "Process.wait/suspend called outside a process"

let check_killed p = if p.kill_requested then raise Killed

let spawn engine ~name f =
  let p = { name; engine; state = Running; kill_requested = false } in
  let finish () = if p.state = Running then p.state <- Finished in
  let fail e =
    Log.debug (fun m -> m "process %s failed: %s" name (Printexc.to_string e));
    p.state <- Failed e
  in
  let open Effect.Deep in
  let handler : (unit, unit) handler =
    {
      retc = (fun () -> finish ());
      exnc =
        (fun e ->
          match e with
          | Killed -> finish ()
          | e -> fail e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait (q, n) when q == p ->
            Some
              (fun (k : (a, unit) continuation) ->
                Engine.schedule engine ~delay:n (fun () ->
                    with_current p (fun () ->
                        if p.kill_requested then discontinue k Killed
                        else continue k ())))
          | Suspend (q, register) when q == p ->
            Some
              (fun (k : (a, unit) continuation) ->
                let resumed = ref false in
                let resume v =
                  if not !resumed then begin
                    resumed := true;
                    Engine.schedule engine ~delay:0 (fun () ->
                        with_current p (fun () ->
                            if p.kill_requested then discontinue k Killed
                            else continue k v))
                  end
                in
                register resume)
          | _ -> None);
    }
  in
  Engine.schedule engine ~delay:0 (fun () ->
      with_current p (fun () ->
          match_with
            (fun () ->
              check_killed p;
              f ())
            () handler));
  p

let name p = p.name

let status p = p.state

let kill p = if p.state = Running then p.kill_requested <- true

let wait n =
  if n < 0 then invalid_arg "Process.wait: negative duration";
  let p = self () in
  check_killed p;
  if n = 0 then Effect.perform (Wait (p, 0)) else Effect.perform (Wait (p, n))

let suspend register =
  let p = self () in
  check_killed p;
  Effect.perform (Suspend (p, register))

module Ivar = struct
  type 'a state_ =
    | Empty of ('a -> unit) list
    | Full of 'a

  type 'a ivar = { mutable cell : 'a state_ }

  let create () = { cell = Empty [] }

  let fill iv v =
    match iv.cell with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty readers ->
      iv.cell <- Full v;
      List.iter (fun resume -> resume v) (List.rev readers)

  let is_filled iv = match iv.cell with Full _ -> true | Empty _ -> false

  let peek iv = match iv.cell with Full v -> Some v | Empty _ -> None

  let read iv =
    match iv.cell with
    | Full v -> v
    | Empty _ ->
      suspend (fun resume ->
          match iv.cell with
          | Full v -> resume v
          | Empty readers -> iv.cell <- Empty (resume :: readers))
end

module Waitq = struct
  (* Entries carry a liveness flag so that waiting on several queues at
     once (Dtu.wait_any) can cancel the losers after one queue fires:
     a consumed or cancelled entry must neither count as a waiter nor
     absorb a signal (which would silently lose the wakeup). *)
  type 'a entry = {
    e_resume : 'a -> unit;
    mutable e_live : bool;
  }

  type 'a waitq = { mutable parked : 'a entry list (* newest first *) }

  let create () = { parked = [] }

  let sweep q =
    match q.parked with
    | [] -> ()
    | _ -> q.parked <- List.filter (fun e -> e.e_live) q.parked

  let register q resume =
    sweep q;
    let e = { e_resume = resume; e_live = true } in
    q.parked <- e :: q.parked;
    e

  let cancel e = e.e_live <- false

  let park q = suspend (fun resume -> ignore (register q resume))

  let signal q v =
    let rec oldest_live = function
      | [] -> None
      | e :: rest -> if e.e_live then Some (e, rest) else oldest_live rest
    in
    match oldest_live (List.rev q.parked) with
    | None ->
      q.parked <- [];
      false
    | Some (e, rest_oldest_first) ->
      q.parked <- List.rev rest_oldest_first;
      e.e_live <- false;
      e.e_resume v;
      true

  let broadcast q v =
    let all = List.rev q.parked in
    q.parked <- [];
    List.iter
      (fun e ->
        if e.e_live then begin
          e.e_live <- false;
          e.e_resume v
        end)
      all

  let waiters q = List.fold_left (fun n e -> if e.e_live then n + 1 else n) 0 q.parked
end
