type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  (* Observations are retained for order statistics; [sorted] caches
     whether samples.(0..count-1) is currently in ascending order. *)
  mutable samples : float array;
  mutable sorted : bool;
}

let create () =
  {
    count = 0;
    mean = 0.0;
    m2 = 0.0;
    min = infinity;
    max = neg_infinity;
    samples = [||];
    sorted = true;
  }

(* Welford's online algorithm. *)
let add t x =
  if t.count >= Array.length t.samples then begin
    let cap = Stdlib.max 16 (2 * Array.length t.samples) in
    let grown = Array.make cap 0.0 in
    Array.blit t.samples 0 grown 0 t.count;
    t.samples <- grown
  end;
  t.samples.(t.count) <- x;
  t.sorted <- t.sorted && (t.count = 0 || t.samples.(t.count - 1) <= x);
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.count

let mean t = if t.count = 0 then 0.0 else t.mean

let stddev t =
  if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.count - 1))

let min t = t.min

let max t = t.max

let percentile t p =
  if t.count = 0 then 0.0
  else begin
    if not t.sorted then begin
      let live = Array.sub t.samples 0 t.count in
      Array.sort Float.compare live;
      t.samples <- live;
      t.sorted <- true
    end;
    let p = Stdlib.min 100.0 (Stdlib.max 0.0 p) in
    (* Linear interpolation between closest ranks. *)
    let rank = p /. 100.0 *. float_of_int (t.count - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (t.count - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    t.samples.(lo) +. (frac *. (t.samples.(hi) -. t.samples.(lo)))
  end

let merge a b =
  let t = create () in
  let absorb s =
    for i = 0 to s.count - 1 do
      add t s.samples.(i)
    done
  in
  absorb a;
  absorb b;
  t

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t
