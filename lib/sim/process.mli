(** Cooperative simulation processes built on OCaml effect handlers.

    A process is a plain OCaml function that can consume simulated time
    ([wait]) and park itself until some other party resumes it
    ([suspend]). This lets OS and application code of the simulated
    platform read as straight-line code while the engine interleaves
    all processes deterministically. *)

type status =
  | Running
  | Finished
  | Failed of exn

type t

(** Raised inside a process that someone [kill]ed. *)
exception Killed

(** [spawn engine ~name f] schedules [f] to start running at the
    current cycle and returns its handle. Exceptions escaping [f] are
    recorded in the status (and logged), not re-raised into the
    engine. *)
val spawn : Engine.t -> name:string -> (unit -> unit) -> t

(** [name p] is the name given at spawn time. *)
val name : t -> string

(** [status p] is the current lifecycle state of [p]. *)
val status : t -> status

(** [kill p] makes [p] raise {!Killed} at its next wait/suspend point.
    A no-op on finished processes. *)
val kill : t -> unit

(** [wait n] — call from inside a process — advances the process's
    local time by [n >= 0] cycles. [wait 0] yields to other events at
    the current cycle. *)
val wait : int -> unit

(** [suspend register] parks the calling process. [register] receives a
    one-shot [resume] function; calling [resume v] (from any other
    process or event) schedules the parked process to continue with
    value [v] at the cycle of the [resume] call. *)
val suspend : (('a -> unit) -> unit) -> 'a

(** Write-once synchronization cell. *)
module Ivar : sig
  type 'a ivar

  val create : unit -> 'a ivar

  (** [fill iv v] stores [v] and wakes all readers.
      @raise Invalid_argument if already filled. *)
  val fill : 'a ivar -> 'a -> unit

  val is_filled : 'a ivar -> bool

  (** [peek iv] is the stored value, if any, without blocking. *)
  val peek : 'a ivar -> 'a option

  (** [read iv] returns the value, parking the caller until [fill]. *)
  val read : 'a ivar -> 'a
end

(** Queue of parked processes, woken one by one or all at once. *)
module Waitq : sig
  type 'a waitq

  (** Handle to one registration, used to deregister it (e.g. after a
      wait on several queues at once was satisfied by another queue). *)
  type 'a entry

  val create : unit -> 'a waitq

  (** [park q] parks the caller on [q]. *)
  val park : 'a waitq -> 'a

  (** [register q resume] adds an externally created resume function
      (from {!suspend}) to the queue — used to wait on several queues
      at once — and returns its entry so the caller can {!cancel} it
      once it is no longer needed. *)
  val register : 'a waitq -> ('a -> unit) -> 'a entry

  (** [cancel e] marks [e] dead: it no longer counts in {!waiters} and
      is skipped by {!signal}/{!broadcast}. Idempotent. *)
  val cancel : 'a entry -> unit

  (** [signal q v] wakes the oldest live parked process with [v];
      returns [false] when no live process was parked (cancelled or
      already-consumed entries are swept, never "woken"). *)
  val signal : 'a waitq -> 'a -> bool

  (** [broadcast q v] wakes every live parked process with [v]. *)
  val broadcast : 'a waitq -> 'a -> unit

  (** [waiters q] is the number of live parked processes. *)
  val waiters : 'a waitq -> int
end
