type 'a entry = { key : int; seq : int; value : 'a }

(* Slots at index >= size hold [None] so that popped events — and
   everything their closures capture — become collectable immediately.
   The previous representation kept the moved last entry (and, in
   [grow], whole arrays of one pinned entry) referenced beyond [size]
   for the life of the heap, which over a long sweep pinned dead event
   closures and their captured simulation state. *)
type 'a t = {
  mutable data : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let is_empty h = h.size = 0

let length h = h.size

let get h i =
  match h.data.(i) with
  | Some e -> e
  | None -> assert false (* slots < size are always populated *)

(* [before a b]: does entry [a] come out of the heap before [b]? *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let capacity' = if capacity = 0 then 64 else capacity * 2 in
    let data' = Array.make capacity' None in
    Array.blit h.data 0 data' 0 h.size;
    h.data <- data'
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (get h i) (get h parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && before (get h left) (get h !smallest) then
    smallest := left;
  if right < h.size && before (get h right) (get h !smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~key value =
  let entry = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h;
  h.data.(h.size) <- Some entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let min_key h = if h.size = 0 then None else Some (get h 0).key

let pop h =
  if h.size = 0 then None
  else begin
    let top = get h 0 in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- None;
      sift_down h 0
    end
    else h.data.(0) <- None;
    Some (top.key, top.value)
  end
