(* Replica-level parallelism: run independent simulations on a small
   pool of OCaml domains.

   The engine's partitioned mode parallelizes *within* one simulation;
   this module parallelizes *across* simulations — the bench sweeps
   and the warm-cache cells run several complete, independent systems
   whose only shared state is the process-global registries (engine
   ids, m3fs server tables, per-env state tables), all of which are
   domain-safe (atomic ids, mutex-protected tables). Each thunk's
   simulation stays fully deterministic: nothing about host scheduling
   leaks into simulated time. *)

let run ~domains thunks =
  let jobs = Array.of_list thunks in
  let n = Array.length jobs in
  let d = max 1 (min domains n) in
  if d = 1 then List.map (fun f -> f ()) thunks
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let work () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          try results.(i) <- Some (jobs.(i) ())
          with e -> errors.(i) <- Some e
      done
    in
    let doms = Array.init (d - 1) (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join doms;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end
