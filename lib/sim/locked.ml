(* Mutex-protected hash tables for process-global registries.

   Several simulator layers keep process-global tables keyed by engine
   id or env uid (the m3fs image/server registries, per-env VFS and
   file state, EP-multiplexer counters): entries of concurrent
   simulations are disjoint by key, but [Hashtbl] itself is not safe
   to mutate from two domains — a racing resize corrupts every bucket.
   This wrapper makes those registries domain-safe without changing
   their shape. The lock is per-table and uncontended in practice
   (disjoint keys, short critical sections). *)

module Table = struct
  type ('k, 'v) t = {
    lock : Mutex.t;
    tbl : ('k, 'v) Hashtbl.t;
  }

  let create n = { lock = Mutex.create (); tbl = Hashtbl.create n }

  let with_lock t f = Mutex.protect t.lock f

  let find_opt t k = with_lock t (fun () -> Hashtbl.find_opt t.tbl k)
  let replace t k v = with_lock t (fun () -> Hashtbl.replace t.tbl k v)
  let add t k v = with_lock t (fun () -> Hashtbl.add t.tbl k v)
  let remove t k = with_lock t (fun () -> Hashtbl.remove t.tbl k)
  let mem t k = with_lock t (fun () -> Hashtbl.mem t.tbl k)
  let length t = with_lock t (fun () -> Hashtbl.length t.tbl)

  (* Snapshot-based iteration: callbacks run outside the lock, so they
     may re-enter the table. *)
  let bindings t =
    with_lock t (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])

  let iter t f = List.iter (fun (k, v) -> f k v) (bindings t)

  let fold t f init =
    List.fold_left (fun acc (k, v) -> f k v acc) init (bindings t)

  (* [remove_if t f] drops every binding satisfying [f]. *)
  let remove_if t f =
    with_lock t (fun () ->
        let doomed =
          Hashtbl.fold
            (fun k v acc -> if f k v then k :: acc else acc)
            t.tbl []
        in
        List.iter (Hashtbl.remove t.tbl) doomed)
end
