(** Replica-level parallelism: run independent simulations on a small
    pool of OCaml domains.

    Complements the engine's partitioned mode (parallelism {e within}
    one simulation): sweeps and multi-cell benchmarks run several
    complete, independent systems concurrently. Results keep the input
    order; each thunk's simulated outcome is identical to a sequential
    run. *)

(** [run ~domains thunks] evaluates every thunk, using up to [domains]
    domains (including the caller's), and returns the results in input
    order. The first exception raised by a thunk (in input order) is
    re-raised after all thunks finished. [domains <= 1] degrades to
    [List.map]. *)
val run : domains:int -> (unit -> 'a) list -> 'a list
