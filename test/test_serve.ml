(* Regression tests for the serving-pool PR:

   - the serve wire format round-trips (requests, drain, admission
     verdicts, generation-tagged batches, worker replies, completion
     notices), and [E_overload] survives both its integer encoding and
     the admission-verdict wire path,
   - [Stats.merge] combines distributions exactly and [percentile]
     takes fractional ranks (p99.9),
   - [Load.poisson] is a pure function of its Rng: same seed, same
     schedule, cycle for cycle,
   - a pool serves an open-loop schedule and a closed-loop client set
     to completion; a bounded queue rejects overload with
     [E_overload] while every accepted request still completes,
   - merely constructing serve values (schedules, configs, encoded
     requests) costs zero simulated cycles: a run that never starts a
     pool is byte-identical to one that never mentions serve,
   - the figS experiment is deterministic (same seed, same JSON) and
     its acceptance criteria hold on the CI-sized sweep: the
     throughput-latency knee, the admission-control SLO, and the
     crash-restart throughput floor. *)

module Engine = M3_sim.Engine
module Rng = M3_sim.Rng
module Stats = M3_sim.Stats
module Bootstrap = M3.Bootstrap
module Env = M3.Env
module Errno = M3.Errno
module Syscalls = M3.Syscalls
module Obs = M3_obs.Obs
module Metrics = M3_obs.Metrics
module Wire = M3_serve.Wire
module Load = M3_serve.Load
module Pool = M3_serve.Pool
module Figs = M3_harness.Figs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let ok = Errno.ok_exn

(* --- wire format -------------------------------------------------------- *)

let test_request_round_trip () =
  List.iter
    (fun rk ->
      let rq = { Wire.seq = 12345; rk } in
      match Wire.decode_client_msg (Wire.encode_request rq) with
      | Wire.Request rq' ->
        check_bool (Wire.kind_name rk ^ " round-trips") true (rq = rq')
      | Wire.Drain -> Alcotest.fail "request decoded as drain")
    [ Wire.Echo 2000; Wire.Fs_stat 7; Wire.Fs_read 3; Wire.Fft 64 ]

let test_drain_round_trip () =
  match Wire.decode_client_msg (Wire.encode_drain ()) with
  | Wire.Drain -> ()
  | Wire.Request _ -> Alcotest.fail "drain decoded as request"

let test_admit_round_trip () =
  List.iter
    (fun (err, seq) ->
      let err', seq' = Wire.decode_admit (Wire.encode_admit ~err ~seq) in
      check_bool "errno round-trips" true (Errno.equal err err');
      check_int "seq round-trips" seq seq')
    [
      (Errno.E_ok, 0);
      (Errno.E_overload, 41);
      (Errno.E_ok, Wire.drain_seq);
    ]

let test_batch_round_trip () =
  let items =
    List.init 13 (fun i -> { Wire.seq = (i * 37) + 1; rk = Wire.Echo i })
  in
  let gen, items' = Wire.decode_batch (Wire.encode_batch ~gen:5 items) in
  check_int "generation" 5 gen;
  check_bool "items round-trip in order" true (items = items');
  let gen0, empty = Wire.decode_batch (Wire.encode_batch ~gen:0 []) in
  check_int "empty batch generation" 0 gen0;
  check_int "empty batch" 0 (List.length empty)

let test_worker_reply_round_trip () =
  let dones =
    [
      { Wire.d_seq = 9; d_err = Errno.E_ok; d_cycles = 2048 };
      { Wire.d_seq = 10; d_err = Errno.E_no_perm; d_cycles = 1 };
    ]
  in
  let worker, gen, dones' =
    Wire.decode_worker_reply (Wire.encode_worker_reply ~worker:3 ~gen:2 dones)
  in
  check_int "worker" 3 worker;
  check_int "generation" 2 gen;
  check_bool "done items round-trip" true (dones = dones')

let test_notice_round_trip () =
  let dones =
    List.init 5 (fun i -> { Wire.d_seq = i; d_err = Errno.E_ok; d_cycles = i })
  in
  check_bool "notice round-trips" true
    (dones = Wire.decode_notice (Wire.encode_notice dones))

(* E_overload is a wire errno: its integer encoding must be stable and
   collision-free (the admission reject path crosses PEs as a byte). *)
let test_overload_errno () =
  check_int "stable wire encoding" 19 (Errno.to_int Errno.E_overload);
  check_bool "of_int inverts to_int" true
    (Errno.equal Errno.E_overload (Errno.of_int 19));
  check_bool "has a message" true
    (String.length (Errno.to_string Errno.E_overload) > 0)

(* --- stats satellites --------------------------------------------------- *)

let test_stats_merge_is_exact () =
  let a = Stats.create () and b = Stats.create () in
  let all = Stats.create () in
  let rng = Rng.create ~seed:7 in
  for i = 0 to 199 do
    let v = Rng.float rng *. 1000.0 in
    Stats.add (if i mod 3 = 0 then a else b) v;
    Stats.add all v
  done;
  let m = Stats.merge a b in
  check_int "count" (Stats.count all) (Stats.count m);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean all) (Stats.mean m);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.1f" p)
        (Stats.percentile all p) (Stats.percentile m p))
    [ 0.0; 50.0; 95.0; 99.0; 100.0 ]

let test_percentile_fractional_and_negative () =
  let s = Stats.create () in
  for i = 1 to 1000 do
    Stats.add s (float_of_int i -. 500.0)
  done;
  (* 1000 samples of i - 500: exact order statistics, with linear
     interpolation between ranks (rank = p/100 * (n-1)). *)
  Alcotest.(check (float 1e-6)) "p99.9 interpolates the tail" 499.001
    (Stats.percentile s 99.9);
  Alcotest.(check (float 1e-6)) "p0 is the minimum" (-499.0)
    (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-6)) "negative values sort numerically" (-449.05)
    (Stats.percentile s 5.0)

(* --- load generation ---------------------------------------------------- *)

let schedule ~seed ~count =
  Load.poisson ~rng:(Rng.create ~seed) ~mean_gap:700.0 ~count
    ~mix:(Load.pure (Wire.Echo 2000))

let test_poisson_is_deterministic () =
  let a = schedule ~seed:11 ~count:300 in
  let b = schedule ~seed:11 ~count:300 in
  check_bool "same seed, same schedule" true (a = b);
  let c = schedule ~seed:12 ~count:300 in
  check_bool "different seed, different schedule" true (a <> c)

let test_poisson_shape () =
  let n = 2000 in
  let s = schedule ~seed:3 ~count:n in
  check_int "count" n (Array.length s);
  Array.iteri (fun i a -> check_int "seq is the index" i a.Load.req.Wire.seq) s;
  let monotone = ref true in
  for i = 1 to n - 1 do
    if s.(i).Load.at <= s.(i - 1).Load.at then monotone := false
  done;
  check_bool "arrival times strictly increase" true !monotone;
  (* Mean inter-arrival gap within 10% of the requested mean. *)
  let span = float_of_int (s.(n - 1).Load.at - s.(0).Load.at) in
  let mean = span /. float_of_int (n - 1) in
  check_bool
    (Printf.sprintf "mean gap %.1f near 700" mean)
    true
    (mean > 630.0 && mean < 770.0)

let test_poisson_validates () =
  let rng = Rng.create ~seed:1 in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "empty mix" true
    (raises (fun () -> Load.poisson ~rng ~mean_gap:10.0 ~count:1 ~mix:[]));
  check_bool "non-positive weight" true
    (raises (fun () ->
         Load.poisson ~rng ~mean_gap:10.0 ~count:1
           ~mix:[ (0, fun _ -> Wire.Echo 1) ]));
  check_bool "non-positive gap" true
    (raises (fun () ->
         Load.poisson ~rng ~mean_gap:0.0 ~count:1
           ~mix:(Load.pure (Wire.Echo 1))))

(* --- pools end to end --------------------------------------------------- *)

(* Boot without a filesystem, run [main] as the load-generating
   client, insist it exits 0. [metrics], when given, is attached as an
   observability sink. *)
let run_app ?metrics main =
  let engine = Engine.create () in
  let obs =
    Option.map
      (fun m ->
        let obs = Obs.of_engine engine in
        Obs.attach obs (Metrics.sink m);
        obs)
      metrics
  in
  let sys = Bootstrap.start ~no_fs:true ?obs engine in
  let exit = Bootstrap.launch sys ~name:"app" main in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys exit

let test_open_loop_completes () =
  let sched = schedule ~seed:21 ~count:60 in
  let out = ref None in
  run_app (fun env ->
      let pool =
        ok (Pool.start env (Pool.default_config ~name:"t" ~workers:2 ()))
      in
      let cr = Pool.run_open env pool ~schedule:sched in
      ok (Pool.stop env pool);
      out := Some (cr, Pool.stats pool);
      0);
  let cr, st = Option.get !out in
  check_int "sent" 60 cr.Pool.cr_sent;
  check_int "completed" 60 cr.Pool.cr_completed;
  check_int "rejected" 0 cr.Pool.cr_rejected;
  check_int "failed" 0 cr.Pool.cr_failed;
  check_int "latency samples" 60 (Stats.count cr.Pool.cr_latency);
  check_int "completion records" 60 (List.length cr.Pool.cr_completions);
  check_int "dispatcher admitted" 60 st.Pool.p_admitted;
  check_int "dispatcher completed" 60 st.Pool.p_completed;
  check_int "requests batched" 60 st.Pool.p_batched;
  check_int "pool service samples" 60 (Stats.count (Pool.service_latency st));
  check_bool "latencies are positive" true (Stats.mean cr.Pool.cr_latency > 0.0)

let test_closed_loop_completes () =
  let out = ref None in
  run_app (fun env ->
      let pool =
        ok (Pool.start env (Pool.default_config ~name:"t" ~workers:2 ()))
      in
      let cr =
        Pool.run_closed env pool ~clients:4 ~total:40 ~make:(fun _ ->
            Wire.Echo 1500)
      in
      ok (Pool.stop env pool);
      out := Some cr;
      0);
  let cr = Option.get !out in
  check_int "sent" 40 cr.Pool.cr_sent;
  check_int "completed" 40 cr.Pool.cr_completed;
  check_int "rejected" 0 cr.Pool.cr_rejected

(* A one-worker pool with a two-deep queue under a dense burst:
   overload must be rejected with E_overload (counted, not served),
   and every accepted request must still complete. Batching kicks in
   on the backlog, so strictly fewer worker messages than requests. *)
let test_admission_rejects_overload () =
  let sched =
    Load.poisson ~rng:(Rng.create ~seed:31) ~mean_gap:120.0 ~count:80
      ~mix:(Load.pure (Wire.Echo 3000))
  in
  let metrics = Metrics.create () in
  let out = ref None in
  run_app ~metrics (fun env ->
      let pool =
        ok
          (Pool.start env
             {
               (Pool.default_config ~name:"adm" ~workers:1 ()) with
               Pool.queue_limit = 4;
             })
      in
      let cr = Pool.run_open env pool ~schedule:sched in
      ok (Pool.stop env pool);
      out := Some (cr, Pool.stats pool);
      0);
  let cr, st = Option.get !out in
  check_bool "some requests rejected" true (cr.Pool.cr_rejected > 0);
  check_bool "some requests served" true (cr.Pool.cr_completed > 0);
  check_int "every request resolved" 80
    (cr.Pool.cr_completed + cr.Pool.cr_rejected + cr.Pool.cr_failed);
  check_int "client and dispatcher agree on rejects" cr.Pool.cr_rejected
    st.Pool.p_rejected;
  check_int "client and dispatcher agree on completions" cr.Pool.cr_completed
    st.Pool.p_completed;
  check_bool "backlog was batched" true (st.Pool.p_batches < st.Pool.p_batched);
  (* The serve.* events landed in the metrics sink. *)
  check_int "metrics saw the rejects" st.Pool.p_rejected
    (match List.assoc_opt "adm" (Metrics.serve_rejects metrics) with
    | Some n -> n
    | None -> 0);
  (match List.assoc_opt "adm" (Metrics.serve_latencies metrics) with
  | Some s -> check_int "metrics saw every completion" st.Pool.p_completed
                (Stats.count s)
  | None -> Alcotest.fail "no serve latency metrics");
  match List.assoc_opt "adm" (Metrics.serve_batches metrics) with
  | Some s -> check_int "metrics saw every batch" st.Pool.p_batches
                (Stats.count s)
  | None -> Alcotest.fail "no serve batch metrics"

(* --- zero-cost guard ---------------------------------------------------- *)

(* The same no-pool workload, once oblivious to serve and once
   constructing schedules/configs/encodings on the side: logs and
   final cycle must match byte for byte (serve values are host-side
   until a pool actually starts). *)
let logged_run ~with_serve_values =
  let engine = Engine.create () in
  let mem = Obs.Memory.create () in
  let obs = Obs.of_engine engine in
  Obs.attach obs (Obs.Memory.sink mem);
  let sys = Bootstrap.start ~no_fs:true ~obs engine in
  let exit =
    Bootstrap.launch sys ~name:"app" (fun env ->
        if with_serve_values then begin
          let sched = schedule ~seed:77 ~count:50 in
          let cfg = Pool.default_config ~name:"unused" ~workers:4 () in
          ignore (Wire.encode_request sched.(0).Load.req);
          ignore (Load.offered_rate sched);
          ignore cfg.Pool.queue_limit
        end;
        for _ = 1 to 20 do
          ok (Syscalls.noop env)
        done;
        0)
  in
  let final = Engine.run engine in
  Bootstrap.expect_exit sys exit;
  (Obs.Memory.to_string mem, final)

let test_no_pool_is_zero_cost () =
  let log_plain, cycles_plain = logged_run ~with_serve_values:false in
  let log_values, cycles_values = logged_run ~with_serve_values:true in
  check_bool "log not empty" true (String.length log_plain > 0);
  check_string "byte-identical event logs" log_plain log_values;
  check_int "identical final cycle" cycles_plain cycles_values

(* --- figS: determinism and acceptance ----------------------------------- *)

let test_figs_is_deterministic () =
  let tiny () =
    Figs.run ~quick:true ~pools:[ 1 ] ~utils:[ 0.4; 1.3 ] ~requests:80
      ~seed:0xD1CE ()
  in
  let a = tiny () and b = tiny () in
  check_string "same seed, same SERVE_results.json" (Figs.to_json a)
    (Figs.to_json b)

(* One CI-sized figS run shared by the acceptance checks. *)
let figs_quick = lazy (Figs.run ~quick:true ())

let test_figs_knee () =
  let t = Lazy.force figs_quick in
  let c = Figs.main_curve t in
  check_int "acceptance curve is the 4-worker pool" 4 c.Figs.w_workers;
  let low = List.hd c.Figs.w_points in
  let last = List.nth c.Figs.w_points (List.length c.Figs.w_points - 1) in
  check_bool
    (Printf.sprintf "p99 inflates %.0f -> %.0f at saturation" low.Figs.s_p99
       last.Figs.s_p99)
    true
    (last.Figs.s_p99 >= Figs.knee_p99_factor *. low.Figs.s_p99);
  check_bool "knee verdict" true (Figs.knee_verdict t)

let test_figs_admission_slo () =
  let t = Lazy.force figs_quick in
  let a = t.Figs.g_admission in
  check_bool "overload was rejected" true (a.Figs.a_rejected > 0);
  check_bool
    (Printf.sprintf "accepted p99 %.0f <= 3x low-load p99 %.0f" a.Figs.a_p99
       a.Figs.a_low_p99)
    true
    (a.Figs.a_p99 <= Figs.admission_p99_factor *. a.Figs.a_low_p99);
  check_bool "admission verdict" true (Figs.admission_verdict t)

let test_figs_crash_restart () =
  let t = Lazy.force figs_quick in
  let k = t.Figs.g_crash in
  check_int "exactly one injected crash" 1 k.Figs.k_crashes;
  check_bool "at least one supervised restart" true (k.Figs.k_restarts >= 1);
  check_bool "dead worker's batch was retried" true (k.Figs.k_retried >= 1);
  check_bool
    (Printf.sprintf "post-restart throughput ratio %.2f >= 0.75" k.Figs.k_ratio)
    true
    (k.Figs.k_ratio
    >= float_of_int (k.Figs.k_workers - 1) /. float_of_int k.Figs.k_workers);
  check_bool "crash verdict" true (Figs.crash_verdict t)

let test_figs_mix () =
  let t = Lazy.force figs_quick in
  check_bool "mixed-kind requests all completed" true (Figs.mix_verdict t)

let test_figs_autoscale () =
  let t = Lazy.force figs_quick in
  let u = t.Figs.g_autoscale in
  check_bool "the dispatcher grew the pool" true (u.Figs.u_scale_ups >= 1);
  check_bool "the dispatcher shrank it back" true (u.Figs.u_scale_downs >= 1);
  check_int "both pools completed the same work" u.Figs.u_elastic_completed
    u.Figs.u_static_completed;
  let bound = Figs.autoscale_p99_factor *. u.Figs.u_low_p99 in
  check_bool
    (Printf.sprintf "elastic p99 %.0f held under %.0f across the ramp"
       u.Figs.u_elastic_p99 bound)
    true
    (u.Figs.u_elastic_p99 <= bound);
  check_bool
    (Printf.sprintf "static floor p99 %.0f blew through %.0f"
       u.Figs.u_static_p99 bound)
    true
    (u.Figs.u_static_p99 > bound);
  check_bool "autoscale verdict" true (Figs.autoscale_verdict t)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "serve.wire",
      [
        tc "request round-trips" test_request_round_trip;
        tc "drain round-trips" test_drain_round_trip;
        tc "admission verdict round-trips" test_admit_round_trip;
        tc "batch round-trips" test_batch_round_trip;
        tc "worker reply round-trips" test_worker_reply_round_trip;
        tc "notice round-trips" test_notice_round_trip;
        tc "E_overload encoding is stable" test_overload_errno;
      ] );
    ( "serve.stats",
      [
        tc "merge is exact" test_stats_merge_is_exact;
        tc "fractional and negative percentiles"
          test_percentile_fractional_and_negative;
      ] );
    ( "serve.load",
      [
        tc "poisson is deterministic" test_poisson_is_deterministic;
        tc "poisson shape" test_poisson_shape;
        tc "poisson validates arguments" test_poisson_validates;
      ] );
    ( "serve.pool",
      [
        tc "open loop completes" test_open_loop_completes;
        tc "closed loop completes" test_closed_loop_completes;
        tc "admission rejects overload" test_admission_rejects_overload;
        tc "no pool, no cost" test_no_pool_is_zero_cost;
      ] );
    ( "serve.figS",
      [
        tc "deterministic results" test_figs_is_deterministic;
        tc "knee" test_figs_knee;
        tc "admission SLO" test_figs_admission_slo;
        tc "crash restart" test_figs_crash_restart;
        tc "mixed kinds" test_figs_mix;
        tc "autoscale" test_figs_autoscale;
      ] );
  ]
