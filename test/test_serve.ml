(* Regression tests for the serving-pool PR:

   - the serve wire format round-trips (requests, drain, admission
     verdicts, generation-tagged batches, worker replies, completion
     notices), and [E_overload] survives both its integer encoding and
     the admission-verdict wire path,
   - [Stats.merge] combines distributions exactly and [percentile]
     takes fractional ranks (p99.9),
   - [Load.poisson] is a pure function of its Rng: same seed, same
     schedule, cycle for cycle,
   - a pool serves an open-loop schedule and a closed-loop client set
     to completion; a bounded queue rejects overload with
     [E_overload] while every accepted request still completes,
   - trip recovery is exactly-once: a non-idempotent [App] workload
     under an injected stall never executes a request twice (the
     harvest of late replies strikes the front-requeued copies), and
     the whole trip/probe/close cycle is deterministic,
   - merely constructing serve values (schedules, configs, encoded
     requests) costs zero simulated cycles: a run that never starts a
     pool is byte-identical to one that never mentions serve, and a
     gateway that never fires (generous bucket, no breaker) is
     byte-identical to no gateway at all,
   - the figS experiment is deterministic (same seed, same JSON) and
     its acceptance criteria hold on the CI-sized sweep: the
     throughput-latency knee, the admission-control SLO, the
     crash-restart throughput floor, elastic autoscale, hot-client
     isolation, breaker trip/recovery, and hot upgrade under load. *)

module Engine = M3_sim.Engine
module Rng = M3_sim.Rng
module Stats = M3_sim.Stats
module Bootstrap = M3.Bootstrap
module Env = M3.Env
module Errno = M3.Errno
module Syscalls = M3.Syscalls
module Obs = M3_obs.Obs
module Metrics = M3_obs.Metrics
module Wire = M3_serve.Wire
module Load = M3_serve.Load
module Pool = M3_serve.Pool
module Gateway = M3_serve.Gateway
module Figs = M3_harness.Figs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let ok = Errno.ok_exn

(* --- wire format -------------------------------------------------------- *)

let test_request_round_trip () =
  List.iter
    (fun rk ->
      let rq = { Wire.seq = 12345; rk } in
      match Wire.decode_client_msg (Wire.encode_request rq) with
      | Wire.Request { client; req = rq' } ->
          check_bool (Wire.kind_name rk ^ " round-trips") true (rq = rq');
          check_int "default client id" 0 client
      | Wire.Drain -> Alcotest.fail "request decoded as drain"
      | Wire.Upgrade _ -> Alcotest.fail "request decoded as upgrade")
    [
      Wire.Echo 2000; Wire.Fs_stat 7; Wire.Fs_read 3; Wire.Fft 64; Wire.App 99;
    ]

let test_request_client_round_trip () =
  List.iter
    (fun client ->
      let rq = { Wire.seq = 7; rk = Wire.Echo 100 } in
      match Wire.decode_client_msg (Wire.encode_request ~client rq) with
      | Wire.Request { client = c'; req = rq' } ->
          check_int "client id rides the request" client c';
          check_bool "request intact" true (rq = rq')
      | Wire.Drain | Wire.Upgrade _ ->
          Alcotest.fail "client request decoded as control message")
    [ 0; 1; 5; 255 ]

let test_drain_round_trip () =
  match Wire.decode_client_msg (Wire.encode_drain ()) with
  | Wire.Drain -> ()
  | Wire.Request _ | Wire.Upgrade _ ->
      Alcotest.fail "drain decoded as something else"

let test_upgrade_round_trip () =
  List.iter
    (fun worker ->
      match Wire.decode_client_msg (Wire.encode_upgrade ~worker) with
      | Wire.Upgrade w -> check_int "upgrade target round-trips" worker w
      | Wire.Request _ | Wire.Drain ->
          Alcotest.fail "upgrade decoded as something else")
    [ 0; 3; 31 ]

let test_admit_round_trip () =
  List.iter
    (fun (err, seq) ->
      let err', seq' = Wire.decode_admit (Wire.encode_admit ~err ~seq) in
      check_bool "errno round-trips" true (Errno.equal err err');
      check_int "seq round-trips" seq seq')
    [
      (Errno.E_ok, 0);
      (Errno.E_overload, 41);
      (Errno.E_ok, Wire.drain_seq);
    ]

let test_batch_round_trip () =
  let items =
    List.init 13 (fun i -> { Wire.seq = (i * 37) + 1; rk = Wire.Echo i })
  in
  let gen, items' = Wire.decode_batch (Wire.encode_batch ~gen:5 items) in
  check_int "generation" 5 gen;
  check_bool "items round-trip in order" true (items = items');
  let gen0, empty = Wire.decode_batch (Wire.encode_batch ~gen:0 []) in
  check_int "empty batch generation" 0 gen0;
  check_int "empty batch" 0 (List.length empty)

let test_worker_reply_round_trip () =
  let dones =
    [
      { Wire.d_seq = 9; d_err = Errno.E_ok; d_cycles = 2048 };
      { Wire.d_seq = 10; d_err = Errno.E_no_perm; d_cycles = 1 };
    ]
  in
  let worker, gen, dones' =
    Wire.decode_worker_reply (Wire.encode_worker_reply ~worker:3 ~gen:2 dones)
  in
  check_int "worker" 3 worker;
  check_int "generation" 2 gen;
  check_bool "done items round-trip" true (dones = dones')

let test_notice_round_trip () =
  let dones =
    List.init 5 (fun i -> { Wire.d_seq = i; d_err = Errno.E_ok; d_cycles = i })
  in
  check_bool "notice round-trips" true
    (dones = Wire.decode_notice (Wire.encode_notice dones))

(* E_overload is a wire errno: its integer encoding must be stable and
   collision-free (the admission reject path crosses PEs as a byte). *)
let test_overload_errno () =
  check_int "stable wire encoding" 19 (Errno.to_int Errno.E_overload);
  check_bool "of_int inverts to_int" true
    (Errno.equal Errno.E_overload (Errno.of_int 19));
  check_bool "has a message" true
    (String.length (Errno.to_string Errno.E_overload) > 0)

(* Same for the two gateway verdicts. *)
let test_gateway_errnos () =
  List.iter
    (fun (e, code) ->
      check_int "stable wire encoding" code (Errno.to_int e);
      check_bool "of_int inverts to_int" true (Errno.equal e (Errno.of_int code));
      check_bool "has a message" true (String.length (Errno.to_string e) > 0))
    [ (Errno.E_throttled, 20); (Errno.E_unavailable, 21) ]

(* --- stats satellites --------------------------------------------------- *)

let test_stats_merge_is_exact () =
  let a = Stats.create () and b = Stats.create () in
  let all = Stats.create () in
  let rng = Rng.create ~seed:7 in
  for i = 0 to 199 do
    let v = Rng.float rng *. 1000.0 in
    Stats.add (if i mod 3 = 0 then a else b) v;
    Stats.add all v
  done;
  let m = Stats.merge a b in
  check_int "count" (Stats.count all) (Stats.count m);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean all) (Stats.mean m);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.1f" p)
        (Stats.percentile all p) (Stats.percentile m p))
    [ 0.0; 50.0; 95.0; 99.0; 100.0 ]

let test_percentile_fractional_and_negative () =
  let s = Stats.create () in
  for i = 1 to 1000 do
    Stats.add s (float_of_int i -. 500.0)
  done;
  (* 1000 samples of i - 500: exact order statistics, with linear
     interpolation between ranks (rank = p/100 * (n-1)). *)
  Alcotest.(check (float 1e-6)) "p99.9 interpolates the tail" 499.001
    (Stats.percentile s 99.9);
  Alcotest.(check (float 1e-6)) "p0 is the minimum" (-499.0)
    (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-6)) "negative values sort numerically" (-449.05)
    (Stats.percentile s 5.0)

(* --- load generation ---------------------------------------------------- *)

let schedule ~seed ~count =
  Load.poisson ~rng:(Rng.create ~seed) ~mean_gap:700.0 ~count
    ~mix:(Load.pure (Wire.Echo 2000)) ()

let test_poisson_is_deterministic () =
  let a = schedule ~seed:11 ~count:300 in
  let b = schedule ~seed:11 ~count:300 in
  check_bool "same seed, same schedule" true (a = b);
  let c = schedule ~seed:12 ~count:300 in
  check_bool "different seed, different schedule" true (a <> c)

let test_poisson_shape () =
  let n = 2000 in
  let s = schedule ~seed:3 ~count:n in
  check_int "count" n (Array.length s);
  Array.iteri (fun i a -> check_int "seq is the index" i a.Load.req.Wire.seq) s;
  let monotone = ref true in
  for i = 1 to n - 1 do
    if s.(i).Load.at <= s.(i - 1).Load.at then monotone := false
  done;
  check_bool "arrival times strictly increase" true !monotone;
  (* Mean inter-arrival gap within 10% of the requested mean. *)
  let span = float_of_int (s.(n - 1).Load.at - s.(0).Load.at) in
  let mean = span /. float_of_int (n - 1) in
  check_bool
    (Printf.sprintf "mean gap %.1f near 700" mean)
    true
    (mean > 630.0 && mean < 770.0)

let test_poisson_validates () =
  let rng = Rng.create ~seed:1 in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "empty mix" true
    (raises (fun () -> Load.poisson ~rng ~mean_gap:10.0 ~count:1 ~mix:[] ()));
  check_bool "non-positive weight" true
    (raises (fun () ->
         Load.poisson ~rng ~mean_gap:10.0 ~count:1
           ~mix:[ (0, fun _ -> Wire.Echo 1) ] ()));
  check_bool "non-positive gap" true
    (raises (fun () ->
         Load.poisson ~rng ~mean_gap:0.0 ~count:1
           ~mix:(Load.pure (Wire.Echo 1)) ()))

(* Zipf client ids: a pure function of the Rng (the figS hot-client
   schedules rely on it), visibly head-heavy, and validated. *)
let test_zipf_deterministic_and_skewed () =
  let draws seed =
    let rng = Rng.create ~seed in
    let pick = Load.zipf_clients ~n:8 ~theta:1.2 in
    Array.init 4_000 (fun _ -> pick rng)
  in
  let a = draws 5 in
  check_bool "same seed, same draws" true (a = draws 5);
  let counts = Array.make 8 0 in
  Array.iter
    (fun c ->
      check_bool "id in range" true (c >= 0 && c < 8);
      counts.(c) <- counts.(c) + 1)
    a;
  check_bool "client 0 is the hottest" true
    (Array.for_all (fun n -> counts.(0) >= n) counts);
  check_bool "the head dominates the tail" true (counts.(0) > 3 * counts.(7));
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "n < 1 rejected" true
    (raises (fun () -> Load.zipf_clients ~n:0 ~theta:1.0));
  check_bool "negative theta rejected" true
    (raises (fun () -> Load.zipf_clients ~n:2 ~theta:(-0.1)))

(* Adding a client picker must not perturb the arrival times or kinds
   of an existing seed — ids are drawn after the gap and kind. *)
let test_clients_do_not_perturb_arrivals () =
  let base = schedule ~seed:11 ~count:200 in
  let mixed =
    Load.poisson
      ~clients:(Load.zipf_clients ~n:4 ~theta:1.0)
      ~rng:(Rng.create ~seed:11) ~mean_gap:700.0 ~count:200
      ~mix:(Load.pure (Wire.Echo 2000)) ()
  in
  let some_nonzero = ref false in
  Array.iteri
    (fun i a ->
      check_int "same arrival time" base.(i).Load.at a.Load.at;
      check_bool "same request" true (base.(i).Load.req = a.Load.req);
      if a.Load.client <> 0 then some_nonzero := true)
    mixed;
  check_bool "picker actually assigned ids" true !some_nonzero;
  check_bool "pickerless schedules stay client 0" true
    (Array.for_all (fun a -> a.Load.client = 0) base)

(* --- pools end to end --------------------------------------------------- *)

(* Boot without a filesystem, run [main] as the load-generating
   client, insist it exits 0. [metrics], when given, is attached as an
   observability sink. *)
let run_app ?metrics main =
  let engine = Engine.create () in
  let obs =
    Option.map
      (fun m ->
        let obs = Obs.of_engine engine in
        Obs.attach obs (Metrics.sink m);
        obs)
      metrics
  in
  let sys = Bootstrap.start ~no_fs:true ?obs engine in
  let exit = Bootstrap.launch sys ~name:"app" main in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys exit

let test_open_loop_completes () =
  let sched = schedule ~seed:21 ~count:60 in
  let out = ref None in
  run_app (fun env ->
      let pool =
        ok (Pool.start env (Pool.default_config ~name:"t" ~workers:2 ()))
      in
      let cr = Pool.run_open env pool ~schedule:sched in
      ok (Pool.stop env pool);
      out := Some (cr, Pool.stats pool);
      0);
  let cr, st = Option.get !out in
  check_int "sent" 60 cr.Pool.cr_sent;
  check_int "completed" 60 cr.Pool.cr_completed;
  check_int "rejected" 0 cr.Pool.cr_rejected;
  check_int "failed" 0 cr.Pool.cr_failed;
  check_int "latency samples" 60 (Stats.count cr.Pool.cr_latency);
  check_int "completion records" 60 (List.length cr.Pool.cr_completions);
  check_int "dispatcher admitted" 60 st.Pool.p_admitted;
  check_int "dispatcher completed" 60 st.Pool.p_completed;
  check_int "requests batched" 60 st.Pool.p_batched;
  check_int "pool service samples" 60 (Stats.count (Pool.service_latency st));
  check_bool "latencies are positive" true (Stats.mean cr.Pool.cr_latency > 0.0)

let test_closed_loop_completes () =
  let out = ref None in
  run_app (fun env ->
      let pool =
        ok (Pool.start env (Pool.default_config ~name:"t" ~workers:2 ()))
      in
      let cr =
        Pool.run_closed env pool ~clients:4 ~total:40 ~make:(fun _ ->
            Wire.Echo 1500)
      in
      ok (Pool.stop env pool);
      out := Some cr;
      0);
  let cr = Option.get !out in
  check_int "sent" 40 cr.Pool.cr_sent;
  check_int "completed" 40 cr.Pool.cr_completed;
  check_int "rejected" 0 cr.Pool.cr_rejected

(* A one-worker pool with a two-deep queue under a dense burst:
   overload must be rejected with E_overload (counted, not served),
   and every accepted request must still complete. Batching kicks in
   on the backlog, so strictly fewer worker messages than requests. *)
let test_admission_rejects_overload () =
  let sched =
    Load.poisson ~rng:(Rng.create ~seed:31) ~mean_gap:120.0 ~count:80
      ~mix:(Load.pure (Wire.Echo 3000)) ()
  in
  let metrics = Metrics.create () in
  let out = ref None in
  run_app ~metrics (fun env ->
      let pool =
        ok
          (Pool.start env
             {
               (Pool.default_config ~name:"adm" ~workers:1 ()) with
               Pool.queue_limit = 4;
             })
      in
      let cr = Pool.run_open env pool ~schedule:sched in
      ok (Pool.stop env pool);
      out := Some (cr, Pool.stats pool);
      0);
  let cr, st = Option.get !out in
  check_bool "some requests rejected" true (cr.Pool.cr_rejected > 0);
  check_bool "some requests served" true (cr.Pool.cr_completed > 0);
  check_int "every request resolved" 80
    (cr.Pool.cr_completed + cr.Pool.cr_rejected + cr.Pool.cr_failed);
  check_int "client and dispatcher agree on rejects" cr.Pool.cr_rejected
    st.Pool.p_rejected;
  check_int "client and dispatcher agree on completions" cr.Pool.cr_completed
    st.Pool.p_completed;
  check_bool "backlog was batched" true (st.Pool.p_batches < st.Pool.p_batched);
  (* The serve.* events landed in the metrics sink. *)
  check_int "metrics saw the rejects" st.Pool.p_rejected
    (match List.assoc_opt "adm" (Metrics.serve_rejects metrics) with
    | Some n -> n
    | None -> 0);
  (match List.assoc_opt "adm" (Metrics.serve_latencies metrics) with
  | Some s -> check_int "metrics saw every completion" st.Pool.p_completed
                (Stats.count s)
  | None -> Alcotest.fail "no serve latency metrics");
  match List.assoc_opt "adm" (Metrics.serve_batches metrics) with
  | Some s -> check_int "metrics saw every batch" st.Pool.p_batches
                (Stats.count s)
  | None -> Alcotest.fail "no serve batch metrics"

(* --- exactly-once under trip recovery ----------------------------------- *)

(* The at-least-once regression: a single-seat breaker pool serving
   non-idempotent [App] requests (a host-side counter witnesses every
   execution). One request stalls past the watchdog, the breaker trips
   and the batch is front-requeued; the worker's late reply is then
   harvested — completions delivered, requeued copies struck — so no
   argument may ever execute twice even though dispatch is
   at-least-once. *)
let test_trip_recovery_is_exactly_once () =
  let sched =
    Load.poisson ~rng:(Rng.create ~seed:47) ~mean_gap:2_500.0 ~count:80
      ~mix:[ (1, fun s -> Wire.App s) ]
      ()
  in
  let execs : (int, int) Hashtbl.t = Hashtbl.create 128 in
  let stalled = ref false in
  let out = ref None in
  run_app (fun env ->
      let cfg =
        {
          (Pool.default_config ~name:"dd" ~workers:1 ()) with
          Pool.watchdog = 30_000;
          gateway =
            Some
              (Gateway.config ~breaker:(Gateway.breaker ~cooldown:50_000 ()) ());
          app =
            Some
              (fun arg ->
                Hashtbl.replace execs arg
                  (1 + Option.value ~default:0 (Hashtbl.find_opt execs arg));
                if !stalled then 500
                else begin
                  stalled := true;
                  60_000
                end);
        }
      in
      let pool = ok (Pool.start env cfg) in
      let cr = Pool.run_open env pool ~schedule:sched in
      ok (Pool.stop env pool);
      out := Some (cr, Pool.stats pool);
      0);
  let cr, st = Option.get !out in
  check_bool "the stall tripped the breaker" true (st.Pool.p_trips >= 1);
  check_bool "late completions were harvested" true (st.Pool.p_deduped >= 1);
  Hashtbl.iter
    (fun arg n ->
      check_int (Printf.sprintf "request %d executed exactly once" arg) 1 n)
    execs;
  check_int "every completion is one execution" cr.Pool.cr_completed
    (Hashtbl.length execs);
  check_int "no request failed" 0 cr.Pool.cr_failed;
  check_int "every request resolved" 80
    (cr.Pool.cr_completed + cr.Pool.cr_unavail + cr.Pool.cr_rejected
   + cr.Pool.cr_failed)

(* --- gateway determinism ------------------------------------------------- *)

(* A full trip/probe/close cycle is a function of the seed alone: two
   runs of the same stall scenario must agree byte for byte on the
   event log and on the final simulated cycle. *)
let breaker_logged_run () =
  let engine = Engine.create () in
  let mem = Obs.Memory.create () in
  let obs = Obs.of_engine engine in
  Obs.attach obs (Obs.Memory.sink mem);
  let sys = Bootstrap.start ~no_fs:true ~obs engine in
  let sched =
    Load.poisson ~rng:(Rng.create ~seed:91) ~mean_gap:2_500.0 ~count:60
      ~mix:(Load.pure (Wire.Echo 2000)) ()
  in
  sched.(5) <-
    { (sched.(5)) with Load.req = { sched.(5).Load.req with Wire.rk = Wire.App 1 } };
  let stalled = ref false in
  let out = ref None in
  let exit =
    Bootstrap.launch sys ~name:"app" (fun env ->
        let cfg =
          {
            (Pool.default_config ~name:"det" ~workers:1 ()) with
            Pool.watchdog = 30_000;
            gateway =
              Some
                (Gateway.config
                   ~breaker:(Gateway.breaker ~cooldown:50_000 ())
                   ());
            app =
              Some
                (fun _ ->
                  if !stalled then 500
                  else begin
                    stalled := true;
                    60_000
                  end);
          }
        in
        let pool = ok (Pool.start env cfg) in
        let cr = Pool.run_open env pool ~schedule:sched in
        ok (Pool.stop env pool);
        out := Some (cr, Pool.stats pool);
        0)
  in
  let final = Engine.run engine in
  Bootstrap.expect_exit sys exit;
  let cr, st = Option.get !out in
  (Obs.Memory.to_string mem, final, cr, st)

let test_breaker_is_deterministic () =
  let log_a, cyc_a, cr_a, st_a = breaker_logged_run () in
  let log_b, cyc_b, _, _ = breaker_logged_run () in
  check_bool "the breaker tripped" true (st_a.Pool.p_trips >= 1);
  check_bool "and closed again" true (st_a.Pool.p_closes >= 1);
  check_int "no failed requests" 0 cr_a.Pool.cr_failed;
  check_string "byte-identical event logs" log_a log_b;
  check_int "identical final cycle" cyc_a cyc_b

(* --- zero-cost guard ---------------------------------------------------- *)

(* The same no-pool workload, once oblivious to serve and once
   constructing schedules/configs/encodings on the side: logs and
   final cycle must match byte for byte (serve values are host-side
   until a pool actually starts). *)
let logged_run ~with_serve_values =
  let engine = Engine.create () in
  let mem = Obs.Memory.create () in
  let obs = Obs.of_engine engine in
  Obs.attach obs (Obs.Memory.sink mem);
  let sys = Bootstrap.start ~no_fs:true ~obs engine in
  let exit =
    Bootstrap.launch sys ~name:"app" (fun env ->
        if with_serve_values then begin
          let sched = schedule ~seed:77 ~count:50 in
          let cfg = Pool.default_config ~name:"unused" ~workers:4 () in
          ignore (Wire.encode_request sched.(0).Load.req);
          ignore (Load.offered_rate sched);
          ignore cfg.Pool.queue_limit
        end;
        for _ = 1 to 20 do
          ok (Syscalls.noop env)
        done;
        0)
  in
  let final = Engine.run engine in
  Bootstrap.expect_exit sys exit;
  (Obs.Memory.to_string mem, final)

let test_no_pool_is_zero_cost () =
  let log_plain, cycles_plain = logged_run ~with_serve_values:false in
  let log_values, cycles_values = logged_run ~with_serve_values:true in
  check_bool "log not empty" true (String.length log_plain > 0);
  check_string "byte-identical event logs" log_plain log_values;
  check_int "identical final cycle" cycles_plain cycles_values

(* A gateway that never fires must be invisible: the same seeded pool
   run with [gateway = None] and with a bucket generous enough to
   admit everything (burst covers the whole schedule) must produce
   byte-identical event logs and the same final cycle — bucket checks
   are host-side and a bucket-only gateway never arms dispatcher
   polling. *)
let gateway_cost_run gateway =
  let engine = Engine.create () in
  let mem = Obs.Memory.create () in
  let obs = Obs.of_engine engine in
  Obs.attach obs (Obs.Memory.sink mem);
  let sys = Bootstrap.start ~no_fs:true ~obs engine in
  let sched = schedule ~seed:83 ~count:50 in
  let exit =
    Bootstrap.launch sys ~name:"app" (fun env ->
        let cfg =
          {
            (Pool.default_config ~name:"zc" ~workers:2 ()) with
            Pool.gateway = gateway;
          }
        in
        let pool = ok (Pool.start env cfg) in
        let cr = Pool.run_open env pool ~schedule:sched in
        ok (Pool.stop env pool);
        if cr.Pool.cr_completed <> 50 || cr.Pool.cr_throttled <> 0 then 1 else 0)
  in
  let final = Engine.run engine in
  Bootstrap.expect_exit sys exit;
  (Obs.Memory.to_string mem, final)

let test_idle_gateway_is_zero_cost () =
  let generous =
    Gateway.config ~bucket:(Gateway.bucket ~burst:64 ~refill:1 ()) ()
  in
  let log_off, cycles_off = gateway_cost_run None in
  let log_on, cycles_on = gateway_cost_run (Some generous) in
  check_bool "log not empty" true (String.length log_off > 0);
  check_string "byte-identical event logs" log_off log_on;
  check_int "identical final cycle" cycles_off cycles_on

(* --- figS: determinism and acceptance ----------------------------------- *)

let test_figs_is_deterministic () =
  let tiny () =
    Figs.run ~quick:true ~pools:[ 1 ] ~utils:[ 0.4; 1.3 ] ~requests:80
      ~seed:0xD1CE ()
  in
  let a = tiny () and b = tiny () in
  check_string "same seed, same SERVE_results.json" (Figs.to_json a)
    (Figs.to_json b)

(* One CI-sized figS run shared by the acceptance checks. *)
let figs_quick = lazy (Figs.run ~quick:true ())

let test_figs_knee () =
  let t = Lazy.force figs_quick in
  let c = Figs.main_curve t in
  check_int "acceptance curve is the 4-worker pool" 4 c.Figs.w_workers;
  let low = List.hd c.Figs.w_points in
  let last = List.nth c.Figs.w_points (List.length c.Figs.w_points - 1) in
  check_bool
    (Printf.sprintf "p99 inflates %.0f -> %.0f at saturation" low.Figs.s_p99
       last.Figs.s_p99)
    true
    (last.Figs.s_p99 >= Figs.knee_p99_factor *. low.Figs.s_p99);
  check_bool "knee verdict" true (Figs.knee_verdict t)

let test_figs_admission_slo () =
  let t = Lazy.force figs_quick in
  let a = t.Figs.g_admission in
  check_bool "overload was rejected" true (a.Figs.a_rejected > 0);
  check_bool
    (Printf.sprintf "accepted p99 %.0f <= 3x low-load p99 %.0f" a.Figs.a_p99
       a.Figs.a_low_p99)
    true
    (a.Figs.a_p99 <= Figs.admission_p99_factor *. a.Figs.a_low_p99);
  check_bool "admission verdict" true (Figs.admission_verdict t)

let test_figs_crash_restart () =
  let t = Lazy.force figs_quick in
  let k = t.Figs.g_crash in
  check_int "exactly one injected crash" 1 k.Figs.k_crashes;
  check_bool "at least one supervised restart" true (k.Figs.k_restarts >= 1);
  check_bool "dead worker's batch was retried" true (k.Figs.k_retried >= 1);
  check_bool
    (Printf.sprintf "post-restart throughput ratio %.2f >= 0.75" k.Figs.k_ratio)
    true
    (k.Figs.k_ratio
    >= float_of_int (k.Figs.k_workers - 1) /. float_of_int k.Figs.k_workers);
  check_bool "crash verdict" true (Figs.crash_verdict t)

let test_figs_mix () =
  let t = Lazy.force figs_quick in
  check_bool "mixed-kind requests all completed" true (Figs.mix_verdict t)

let test_figs_autoscale () =
  let t = Lazy.force figs_quick in
  let u = t.Figs.g_autoscale in
  check_bool "the dispatcher grew the pool" true (u.Figs.u_scale_ups >= 1);
  check_bool "the dispatcher shrank it back" true (u.Figs.u_scale_downs >= 1);
  check_int "both pools completed the same work" u.Figs.u_elastic_completed
    u.Figs.u_static_completed;
  let bound = Figs.autoscale_p99_factor *. u.Figs.u_low_p99 in
  check_bool
    (Printf.sprintf "elastic p99 %.0f held under %.0f across the ramp"
       u.Figs.u_elastic_p99 bound)
    true
    (u.Figs.u_elastic_p99 <= bound);
  check_bool
    (Printf.sprintf "static floor p99 %.0f blew through %.0f"
       u.Figs.u_static_p99 bound)
    true
    (u.Figs.u_static_p99 > bound);
  check_bool "autoscale verdict" true (Figs.autoscale_verdict t)

let test_figs_hotclient () =
  let t = Lazy.force figs_quick in
  let h = t.Figs.g_hotclient in
  check_bool "the flood was throttled" true (h.Figs.h_hot_throttled > 0);
  check_bool "the flood dominates the throttle count" true
    (h.Figs.h_hot_throttled <= h.Figs.h_throttled
    && 10 * (h.Figs.h_throttled - h.Figs.h_hot_throttled)
       <= h.Figs.h_throttled);
  let bound = Figs.hotclient_factor *. h.Figs.h_baseline_p99 in
  check_bool
    (Printf.sprintf "guarded p99 %.0f within %.0f of the no-flood baseline"
       h.Figs.h_guarded_p99 bound)
    true
    (h.Figs.h_guarded_p99 <= bound);
  check_bool "hotclient verdict" true (Figs.hotclient_verdict t)

let test_figs_breaker () =
  let t = Lazy.force figs_quick in
  let b = t.Figs.g_breaker in
  check_bool "the stall tripped the breaker" true (b.Figs.b_trips >= 1);
  check_bool "requests fast-failed while open" true (b.Figs.b_unavail >= 1);
  check_bool "a half-open probe went out" true (b.Figs.b_probes >= 1);
  check_bool "and closed the breaker" true (b.Figs.b_closes >= 1);
  check_bool "the stalled batch was harvested" true (b.Figs.b_deduped >= 1);
  check_int "no request failed" 0 b.Figs.b_failed;
  check_bool "breaker verdict" true (Figs.breaker_verdict t)

let test_figs_upgrade () =
  let t = Lazy.force figs_quick in
  let u = t.Figs.g_upgrade in
  check_bool "a worker swap committed" true (u.Figs.up_upgrades >= 1);
  check_bool "the client observed the commit" true
    (u.Figs.up_seen >= u.Figs.up_upgrades);
  check_bool "every mounted shard turned its generation over" true
    (u.Figs.up_fs_gens <> []
    && List.for_all (fun (_, g) -> g >= 1) u.Figs.up_fs_gens);
  check_int "zero failed requests across the swap" 0 u.Figs.up_failed;
  check_int "every request completed" u.Figs.up_sent u.Figs.up_completed;
  check_int "retired generation leaked no endpoints" 0 u.Figs.up_leaked_eps;
  check_int "retired generation leaked no capabilities" 0 u.Figs.up_leaked_caps;
  check_bool "upgrade verdict" true (Figs.upgrade_verdict t)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "serve.wire",
      [
        tc "request round-trips" test_request_round_trip;
        tc "client id round-trips" test_request_client_round_trip;
        tc "drain round-trips" test_drain_round_trip;
        tc "upgrade round-trips" test_upgrade_round_trip;
        tc "admission verdict round-trips" test_admit_round_trip;
        tc "batch round-trips" test_batch_round_trip;
        tc "worker reply round-trips" test_worker_reply_round_trip;
        tc "notice round-trips" test_notice_round_trip;
        tc "E_overload encoding is stable" test_overload_errno;
        tc "gateway errno encodings are stable" test_gateway_errnos;
      ] );
    ( "serve.stats",
      [
        tc "merge is exact" test_stats_merge_is_exact;
        tc "fractional and negative percentiles"
          test_percentile_fractional_and_negative;
      ] );
    ( "serve.load",
      [
        tc "poisson is deterministic" test_poisson_is_deterministic;
        tc "poisson shape" test_poisson_shape;
        tc "poisson validates arguments" test_poisson_validates;
        tc "zipf is deterministic and skewed" test_zipf_deterministic_and_skewed;
        tc "client ids do not perturb arrivals"
          test_clients_do_not_perturb_arrivals;
      ] );
    ( "serve.pool",
      [
        tc "open loop completes" test_open_loop_completes;
        tc "closed loop completes" test_closed_loop_completes;
        tc "admission rejects overload" test_admission_rejects_overload;
        tc "trip recovery is exactly-once" test_trip_recovery_is_exactly_once;
        tc "breaker runs are deterministic" test_breaker_is_deterministic;
        tc "no pool, no cost" test_no_pool_is_zero_cost;
        tc "idle gateway, no cost" test_idle_gateway_is_zero_cost;
      ] );
    ( "serve.figS",
      [
        tc "deterministic results" test_figs_is_deterministic;
        tc "knee" test_figs_knee;
        tc "admission SLO" test_figs_admission_slo;
        tc "crash restart" test_figs_crash_restart;
        tc "mixed kinds" test_figs_mix;
        tc "autoscale" test_figs_autoscale;
        tc "hot-client isolation" test_figs_hotclient;
        tc "breaker trip and recovery" test_figs_breaker;
        tc "upgrade under load" test_figs_upgrade;
      ] );
  ]
