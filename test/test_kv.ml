(* Regression tests for the KV service tier PR:

   - both wire forms round-trip: the packed u64 ops (field-width
     boundaries included) and the binary protocol (requests, values,
     scan pages, errors), and the new KV errnos survive their integer
     encoding,
   - [Kv_load.zipf_keys] is a pure function of its Rng (same seed,
     same draws) and actually skews (key 0 hottest), and
     [assign_keys] never perturbs a schedule's shape — arrival times,
     clients and operation kinds are byte-for-byte those of the
     unkeyed schedule,
   - key → bucket → shard placement is a pure function of the store
     config: two independent store instances agree on every path, so
     any worker (or test) can compute placement without coordination,
   - the store's durable header makes puts exactly-once under
     at-least-once dispatch: a replayed put is a dup-skip, never a
     second apply; scan paginates exactly and a stale cursor answers
     [E_kv_cursor]; an oversized value answers [E_kv_too_large],
   - an application that merely constructs KV values (stores,
     schedules, encodings) but starts nothing pays zero simulated
     cycles: its event log is byte-identical to an oblivious run,
   - one full capacity cell of Fig. S2 (boot, shard mounts, pool,
     mount caches) is deterministic: same seed, same record. *)

module Engine = M3_sim.Engine
module Rng = M3_sim.Rng
module Bootstrap = M3.Bootstrap
module Errno = M3.Errno
module Syscalls = M3.Syscalls
module Vfs = M3.Vfs
module Obs = M3_obs.Obs
module Load = M3_serve.Load
module Wire = M3_serve.Wire
module Kv_wire = M3_kv.Kv_wire
module Kv_load = M3_kv.Kv_load
module Store = M3_kv.Kv_store
module Figs2 = M3_harness.Figs2

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let ok = Errno.ok_exn

(* --- packed wire form ---------------------------------------------------- *)

let test_pack_round_trip () =
  List.iter
    (fun op ->
      let op' = Kv_wire.unpack (Kv_wire.pack op) in
      check_bool (Kv_wire.op_name op ^ " round-trips") true (op = op'))
    [
      Kv_wire.Get { key = 0 };
      Kv_wire.Get { key = 0xFFFFFF };
      Kv_wire.Put { key = 1; len = 992 };
      Kv_wire.Put { key = 0xFFFFFF; len = 0xFFFFFF };
      Kv_wire.Delete { key = 42 };
      Kv_wire.Scan { bucket = 0; cursor = 0; limit = 0 };
      Kv_wire.Scan { bucket = 3; cursor = 0xFFFF; limit = 0xFF };
    ]

let test_pack_validates () =
  List.iter
    (fun (name, op) ->
      match Kv_wire.pack op with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (name ^ ": oversized field was packed"))
    [
      ("oversized key", Kv_wire.Get { key = 0x1_000_000 });
      ("negative key", Kv_wire.Delete { key = -1 });
      ("oversized cursor", Kv_wire.Scan { bucket = 0; cursor = 0x10000; limit = 1 });
      ("oversized limit", Kv_wire.Scan { bucket = 0; cursor = 0; limit = 256 });
    ]

(* --- binary wire form ---------------------------------------------------- *)

let test_req_round_trip () =
  List.iter
    (fun rq ->
      let rq' = Kv_wire.decode_req (Kv_wire.encode_req rq) in
      check_bool (Kv_wire.req_name rq ^ " round-trips") true (rq = rq'))
    [
      Kv_wire.R_get { key = "b2/k001" };
      Kv_wire.R_put { key = "k"; seq = 12345; value = String.make 992 'v' };
      Kv_wire.R_put { key = ""; seq = 0; value = "" };
      Kv_wire.R_delete { key = "gone" };
      Kv_wire.R_scan { bucket = 2; cursor = 16; limit = 8 };
      Kv_wire.R_stop;
    ]

let test_resp_round_trip () =
  List.iter
    (fun rp ->
      let rp' = Kv_wire.decode_resp (Kv_wire.encode_resp rp) in
      check_bool "response round-trips" true (rp = rp'))
    [
      Kv_wire.P_value { seq = 7; value = "hello" };
      Kv_wire.P_value { seq = 0; value = "" };
      Kv_wire.P_done;
      Kv_wire.P_page { keys = [ "k0"; "k1"; "k2" ]; next = 3; more = true };
      Kv_wire.P_page { keys = []; next = 0; more = false };
      Kv_wire.P_err Errno.E_not_found;
      Kv_wire.P_err Errno.E_kv_too_large;
      Kv_wire.P_err Errno.E_kv_cursor;
    ]

let test_kv_errnos_encode () =
  List.iter
    (fun e ->
      check_bool (Errno.to_string e ^ " survives its integer encoding") true
        (Errno.of_int (Errno.to_int e) = e))
    [ Errno.E_kv_too_large; Errno.E_kv_cursor ]

(* --- key distribution ---------------------------------------------------- *)

let draws ~seed ~n ~sample count =
  let rng = Rng.create ~seed in
  let s = sample ~n in
  Array.init count (fun _ -> s rng)

let test_zipf_keys_deterministic_and_skewed () =
  let sample ~n = Kv_load.zipf_keys ~n ~theta:0.9 in
  let a = draws ~seed:11 ~n:64 ~sample 2000 in
  let b = draws ~seed:11 ~n:64 ~sample 2000 in
  check_bool "same seed, same key stream" true (a = b);
  let freq = Array.make 64 0 in
  Array.iter (fun k -> freq.(k) <- freq.(k) + 1) a;
  let hottest = ref 0 in
  Array.iteri (fun i c -> if c > freq.(!hottest) then hottest := i) freq;
  check_int "key 0 is the hottest" 0 !hottest;
  check_bool "and carries real mass" true
    (float_of_int freq.(0) > 0.05 *. 2000.0)

let test_uniform_keys_cover () =
  let ks = draws ~seed:12 ~n:8 ~sample:(fun ~n -> Kv_load.uniform_keys ~n) 800 in
  Array.iter (fun k -> check_bool "key in range" true (k >= 0 && k < 8)) ks;
  let freq = Array.make 8 0 in
  Array.iter (fun k -> freq.(k) <- freq.(k) + 1) ks;
  Array.iter (fun c -> check_bool "every key drawn" true (c > 0)) freq

(* [assign_keys] must only rewrite the keys of keyed KV ops: arrival
   times, client ids, sequence numbers and the operation kinds
   themselves are those of the unkeyed schedule, byte for byte. *)
let test_assign_keys_does_not_perturb () =
  let schedule =
    Load.poisson ~rng:(Rng.create ~seed:21)
      ~clients:(Load.uniform_clients ~n:3) ~mean_gap:1_000.0 ~count:80
      ~mix:(Kv_load.op_mix ~reads:3 ~writes:1) ()
  in
  let keyed =
    Kv_load.assign_keys ~rng:(Rng.create ~seed:22)
      ~sample:(Kv_load.zipf_keys ~n:32 ~theta:0.9)
      schedule
  in
  check_int "same length" (Array.length schedule) (Array.length keyed);
  Array.iteri
    (fun i (a : Load.arrival) ->
      let b = keyed.(i) in
      check_int "same arrival time" a.Load.at b.Load.at;
      check_int "same client" a.Load.client b.Load.client;
      check_int "same seq" a.Load.req.Wire.seq b.Load.req.Wire.seq;
      match (a.Load.req.Wire.rk, b.Load.req.Wire.rk) with
      | Wire.Kv pa, Wire.Kv pb -> (
        match (Kv_wire.unpack pa, Kv_wire.unpack pb) with
        | Kv_wire.Get _, Kv_wire.Get { key } | Kv_wire.Delete _, Kv_wire.Delete { key }
          ->
          check_bool "key in range" true (key >= 0 && key < 32)
        | Kv_wire.Put { len = la; _ }, Kv_wire.Put { key; len = lb } ->
          check_int "same value length" la lb;
          check_bool "key in range" true (key >= 0 && key < 32)
        | Kv_wire.Scan _, Kv_wire.Scan _ ->
          check_int "scans pass through untouched" pa pb
        | _ -> Alcotest.fail "operation kind changed")
      | ra, rb ->
        check_bool "non-KV requests pass through untouched" true (ra = rb))
    schedule;
  let again =
    Kv_load.assign_keys ~rng:(Rng.create ~seed:22)
      ~sample:(Kv_load.zipf_keys ~n:32 ~theta:0.9)
      schedule
  in
  check_bool "assignment is deterministic" true (keyed = again)

(* --- placement ----------------------------------------------------------- *)

(* Key placement must be a pure function of the config: independent
   store instances agree on every key's bucket and path, buckets stay
   in range, and the skewed keyspace still spreads over several
   buckets (otherwise sharding could never relieve anything). *)
let test_placement_is_stable () =
  let config = { Store.default_config with Store.keys = 64; buckets = 4 } in
  let a = Store.create ~config ~name:"a" () in
  let b = Store.create ~config ~name:"b" () in
  let used = Array.make 4 false in
  for i = 0 to 63 do
    let key = Store.key_of_index a i in
    check_string "same key naming" key (Store.key_of_index b i);
    let bucket = Store.bucket_of_key a key in
    check_int "same bucket" bucket (Store.bucket_of_key b key);
    check_bool "bucket in range" true (bucket >= 0 && bucket < 4);
    used.(bucket) <- true;
    check_string "same path" (Store.path_of_key a key) (Store.path_of_key b key);
    check_bool "path lives under its bucket directory" true
      (String.length (Store.path_of_key a key) > 3
      && String.sub (Store.path_of_key a key) 0 3
         = Printf.sprintf "/b%d" bucket)
  done;
  Array.iter (fun u -> check_bool "every bucket used" true u) used

(* --- store semantics (simulated) ----------------------------------------- *)

(* Boots kernel + one m3fs (empty seed), mounts it, prepares [store]
   and runs [main] in the app VPE. *)
let run_store ~config main =
  let engine = Engine.create () in
  let fs ~dram = { (M3.M3fs.default_config ~dram) with M3.M3fs.seed = [] } in
  let platform_config =
    { M3_hw.Platform.default_config with ep_count = 16 }
  in
  let store = Store.create ~config ~name:"kv" () in
  let sys = Bootstrap.start ~platform_config ~fs engine in
  let exit =
    Bootstrap.launch sys ~name:"app" (fun env ->
        ok (Vfs.mount_sharded env ~path:"/" ~services:sys.Bootstrap.fs_services);
        ok (Store.prepare env store);
        main env store;
        0)
  in
  ignore (Engine.run engine);
  M3.M3fs.forget ~engine;
  Bootstrap.expect_exit sys exit

let small_config =
  { Store.default_config with Store.keys = 12; buckets = 3; value_len = 64 }

(* A put applies once; the same put replayed (crash-retry,
   front-requeue) reads the durable header and skips — the host-side
   witness sees exactly one apply per sequence number. *)
let test_put_is_exactly_once () =
  run_store ~config:small_config (fun env store ->
      let key = Store.key_of_index store 3 in
      let value = Store.value_of store ~key ~seq:7 in
      let put () =
        Store.exec env store ~seq:7 (Kv_wire.R_put { key; seq = 7; value })
      in
      (match put () with
      | Kv_wire.P_done -> ()
      | _ -> Alcotest.fail "first put did not apply");
      let skips0 = Store.dup_skips store in
      (match put () with
      | Kv_wire.P_done -> ()
      | _ -> Alcotest.fail "replayed put did not answer done");
      check_int "replay is a dup-skip" (skips0 + 1) (Store.dup_skips store);
      check_bool "seq 7 applied exactly once" true
        (Store.applied_once store ~seq:7);
      check_int "nothing double-applied" 0 (Store.double_applied store);
      match Store.exec env store ~seq:0 (Kv_wire.R_get { key }) with
      | Kv_wire.P_value { seq; value = v } ->
        check_int "get sees the applied seq" 7 seq;
        check_string "and the applied value" value v
      | _ -> Alcotest.fail "get after put failed")

let test_put_too_large () =
  run_store ~config:small_config (fun env store ->
      let key = Store.key_of_index store 0 in
      let value = String.make (small_config.Store.value_max + 1) 'x' in
      match Store.exec env store ~seq:1 (Kv_wire.R_put { key; seq = 1; value }) with
      | Kv_wire.P_err Errno.E_kv_too_large -> ()
      | _ -> Alcotest.fail "oversized put was not refused")

(* Scan pages through a bucket exactly: every preloaded key of the
   bucket appears once, the last page says [more = false], and
   resuming past the end answers [E_kv_cursor]. *)
let test_scan_paginates () =
  run_store ~config:small_config (fun env store ->
      let expected = ref [] in
      for i = 0 to small_config.Store.keys - 1 do
        let key = Store.key_of_index store i in
        if Store.bucket_of_key store key = 0 then expected := key :: !expected
      done;
      let rec pages cursor acc rounds =
        if rounds > 32 then Alcotest.fail "scan never terminated";
        match
          Store.exec env store ~seq:0
            (Kv_wire.R_scan { bucket = 0; cursor; limit = 2 })
        with
        | Kv_wire.P_page { keys; next; more } ->
          check_bool "page within limit" true (List.length keys <= 2);
          let acc = acc @ keys in
          if more then pages next acc (rounds + 1) else (acc, next)
        | _ -> Alcotest.fail "scan failed"
      in
      let seen, last = pages 0 [] 0 in
      check_bool "every key of the bucket, exactly once" true
        (List.sort compare seen = List.sort compare !expected);
      match
        Store.exec env store ~seq:0
          (Kv_wire.R_scan { bucket = 0; cursor = last + 8; limit = 2 })
      with
      | Kv_wire.P_err Errno.E_kv_cursor -> ()
      | _ -> Alcotest.fail "stale cursor was not refused")

(* --- zero-cost guard ----------------------------------------------------- *)

(* Constructing KV values — a store object, a keyed schedule, wire
   encodings — is host-side only. A run that builds them but starts
   nothing must be byte-identical to one that never mentions kv. *)
let logged_run ~with_kv_values =
  let engine = Engine.create () in
  let mem = Obs.Memory.create () in
  let obs = Obs.of_engine engine in
  Obs.attach obs (Obs.Memory.sink mem);
  let sys = Bootstrap.start ~no_fs:true ~obs engine in
  let exit =
    Bootstrap.launch sys ~name:"app" (fun env ->
        if with_kv_values then begin
          let store = Store.create ~config:small_config ~name:"idle" () in
          let rng = Rng.create ~seed:31 in
          let schedule =
            Load.poisson ~rng ~mean_gap:500.0 ~count:40
              ~mix:(Kv_load.op_mix ~reads:9 ~writes:1) ()
          in
          let schedule =
            Kv_load.assign_keys ~rng
              ~sample:(Kv_load.zipf_keys ~n:12 ~theta:0.9)
              schedule
          in
          ignore (Store.path_of_key store (Store.key_of_index store 5));
          ignore (Kv_wire.encode_req (Kv_wire.R_get { key = "k" }));
          ignore (Load.offered_rate schedule)
        end;
        for _ = 1 to 20 do
          ok (Syscalls.noop env)
        done;
        0)
  in
  let final = Engine.run engine in
  Bootstrap.expect_exit sys exit;
  (Obs.Memory.to_string mem, final)

let test_kv_off_is_zero_cost () =
  let log_plain, cycles_plain = logged_run ~with_kv_values:false in
  let log_values, cycles_values = logged_run ~with_kv_values:true in
  check_bool "log not empty" true (String.length log_plain > 0);
  check_string "byte-identical event logs" log_plain log_values;
  check_int "identical final cycle" cycles_plain cycles_values

(* --- figS2 determinism --------------------------------------------------- *)

(* One CI-sized capacity cell, end to end (boot, two shard mounts,
   pool, worker mount caches): same seed, same record — every field
   including the cache counters. *)
let test_figs2_cell_is_deterministic () =
  let cell () =
    Figs2.capacity_cell ~keys:16 ~requests:40 ~seed:0xD1CE ~shards:2 ~reads:9
      ~writes:1
  in
  let a = cell () and b = cell () in
  check_bool "same seed, same capacity cell" true (a = b);
  check_int "no failed requests" 0 a.Figs2.c_failed;
  check_int "every request completed" 40 a.Figs2.c_completed

let suites =
  let tc = Alcotest.test_case in
  let tc' name f = tc name `Quick f in
  [
    ( "kv.wire",
      [
        tc' "packed ops round-trip" test_pack_round_trip;
        tc' "packed ops validate widths" test_pack_validates;
        tc' "binary requests round-trip" test_req_round_trip;
        tc' "binary responses round-trip" test_resp_round_trip;
        tc' "kv errnos encode" test_kv_errnos_encode;
      ] );
    ( "kv.load",
      [
        tc' "zipf keys deterministic and skewed"
          test_zipf_keys_deterministic_and_skewed;
        tc' "uniform keys cover" test_uniform_keys_cover;
        tc' "key assignment does not perturb" test_assign_keys_does_not_perturb;
      ] );
    ( "kv.store",
      [
        tc' "placement is stable" test_placement_is_stable;
        tc "put is exactly-once" `Slow test_put_is_exactly_once;
        tc "oversized put refused" `Slow test_put_too_large;
        tc "scan paginates" `Slow test_scan_paginates;
        tc' "kv off, no cost" test_kv_off_is_zero_cost;
        tc "figS2 cell deterministic" `Slow test_figs2_cell_is_deterministic;
      ] );
  ]
