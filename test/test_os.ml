(* End-to-end tests of the M3 OS: boot, syscalls, capabilities, VPEs,
   m3fs, pipes. Everything runs through the simulated DTUs — there is
   no back door. *)

module Engine = M3_sim.Engine
module Process = M3_sim.Process
module Account = M3_sim.Account
module Store = M3_mem.Store
module Perm = M3_mem.Perm
module Pe = M3_hw.Pe
module Platform = M3_hw.Platform

module Bootstrap = M3.Bootstrap
module Env = M3.Env
module Errno = M3.Errno
module Syscalls = M3.Syscalls
module Gate = M3.Gate
module Vpe_api = M3.Vpe_api
module Vfs = M3.Vfs
module File = M3.File
module Fs_proto = M3.Fs_proto
module Pipe = M3.Pipe
module M3fs = M3.M3fs
module Fs_image = M3.Fs_image
module Kernel = M3.Kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let ok = Errno.ok_exn

let expect_errno expected = function
  | Ok _ -> Alcotest.failf "expected error %s" (Errno.to_string expected)
  | Error e -> check_str "errno" (Errno.to_string expected) (Errno.to_string e)

(* Runs [main] as a single app on a booted system (with filesystem by
   default); returns after the engine drained. *)
let run_app ?platform_config ?fs ?(no_fs = false) main =
  let engine = Engine.create () in
  let sys = Bootstrap.start ?platform_config ?fs ~no_fs engine in
  let exit = Bootstrap.launch sys ~name:"test-app" (fun env -> main sys env) in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys exit;
  sys

(* --- syscalls ---------------------------------------------------------- *)

let test_boot_and_noop () =
  ignore
    (run_app ~no_fs:true (fun _sys env ->
         ok (Syscalls.noop env);
         0))

let test_null_syscall_costs_200_cycles () =
  ignore
    (run_app ~no_fs:true (fun _sys env ->
         (* Warm up, then measure — like the paper's methodology. *)
         ok (Syscalls.noop env);
         ok (Syscalls.noop env);
         let t0 = Engine.now env.engine in
         ok (Syscalls.noop env);
         let elapsed = Engine.now env.engine - t0 in
         check_bool
           (Printf.sprintf "null syscall 170..240 cycles (got %d)" elapsed)
           true
           (elapsed >= 170 && elapsed <= 240);
         0))

let test_noop_account_split () =
  let account = Account.create () in
  let engine = Engine.create () in
  let sys = Bootstrap.start ~no_fs:true engine in
  let exit =
    Bootstrap.launch sys ~name:"acct" ~account (fun env ->
        (* Warm up so the measured syscall does not overlap kernel boot. *)
        ok (Syscalls.noop env);
        Account.reset account;
        ok (Syscalls.noop env);
        0)
  in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys exit;
  let xfer = Account.get account Account.Xfer in
  let os = Account.get account Account.Os in
  check_bool
    (Printf.sprintf "xfer share 15..60 (got %d)" xfer)
    true (xfer >= 15 && xfer <= 60);
  (* Includes the exit syscall's marshalling after the measured noop. *)
  check_bool
    (Printf.sprintf "os share 120..260 (got %d)" os)
    true
    (os >= 120 && os <= 260)

let test_req_mem_and_access () =
  ignore
    (run_app ~no_fs:true (fun sys env ->
         let gate, addr = ok (Gate.req_mem env ~size:8192 ~perm:Perm.rw) in
         let spm = Pe.spm env.pe in
         let buf = Env.alloc_spm env ~size:64 in
         Store.write_string spm ~addr:buf "capability-backed dram";
         ok (Gate.write env gate ~off:100 ~local:buf ~len:22);
         let buf2 = Env.alloc_spm env ~size:64 in
         ok (Gate.read env gate ~off:100 ~local:buf2 ~len:22);
         check_str "roundtrip" "capability-backed dram"
           (Store.read_string spm ~addr:buf2 ~len:22);
         (* The bytes really are at the address the kernel allocated. *)
         check_str "in dram" "capability-backed dram"
           (Store.read_string
              (Platform.dram sys.Bootstrap.platform)
              ~addr:(addr + 100) ~len:22);
         0))

let test_derive_mem_narrows () =
  ignore
    (run_app ~no_fs:true (fun _sys env ->
         let gate, _ = ok (Gate.req_mem env ~size:4096 ~perm:Perm.rw) in
         let sub_sel =
           ok
             (Syscalls.derive_mem env ~src_sel:gate.Gate.mg_user.Env.eu_sel
                ~off:1024 ~size:512 ~perm:Perm.r)
         in
         let sub = Gate.mem_gate_of_sel ~sel:sub_sel ~size:512 in
         let buf = Env.alloc_spm env ~size:64 in
         ok (Gate.read env sub ~off:0 ~local:buf ~len:64);
         (* Writing through the read-only child must fail. *)
         expect_errno (Errno.E_dtu "no permission")
           (Gate.write env sub ~off:0 ~local:buf ~len:8);
         (* Widening is rejected at derive time. *)
         expect_errno Errno.E_no_perm
           (Syscalls.derive_mem env ~src_sel:sub_sel ~off:0 ~size:256
              ~perm:Perm.rw);
         expect_errno Errno.E_inv_args
           (Syscalls.derive_mem env ~src_sel:sub_sel ~off:256 ~size:512
              ~perm:Perm.r);
         0))

let test_revoke_frees_dram () =
  let engine = Engine.create () in
  let sys = Bootstrap.start ~no_fs:true engine in
  let before = Kernel.dram_avail sys.Bootstrap.kernel in
  let exit =
    Bootstrap.launch sys ~name:"revoker" (fun env ->
        let gate, _ = ok (Gate.req_mem env ~size:65536 ~perm:Perm.rw) in
        ok (Syscalls.revoke env ~sel:gate.Gate.mg_user.Env.eu_sel);
        0)
  in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys exit;
  check_int "dram fully returned (incl. VPE exit cleanup)" before
    (Kernel.dram_avail sys.Bootstrap.kernel)

let test_exit_cleans_up () =
  let engine = Engine.create () in
  let sys = Bootstrap.start ~no_fs:true engine in
  let before_free = Kernel.free_pes sys.Bootstrap.kernel in
  let before_dram = Kernel.dram_avail sys.Bootstrap.kernel in
  let exit =
    Bootstrap.launch sys ~name:"leaker" (fun env ->
        (* Allocate and DON'T free: exit must clean up. *)
        let _gate = ok (Gate.req_mem env ~size:32768 ~perm:Perm.rw) in
        7)
  in
  ignore (Engine.run engine);
  check_int "exit code" 7 (Option.get (Process.Ivar.peek exit));
  check_int "PE returned" before_free (Kernel.free_pes sys.Bootstrap.kernel);
  check_int "dram returned" before_dram (Kernel.dram_avail sys.Bootstrap.kernel);
  check_int "no live vpes" 0 (Kernel.vpe_count sys.Bootstrap.kernel)

(* --- VPEs ---------------------------------------------------------------- *)

let test_vpe_run_lambda () =
  ignore
    (run_app ~no_fs:true (fun _sys env ->
         (* The paper's example: compute a sum on another PE. *)
         let a = 4 and b = 5 in
         let vpe =
           ok (Vpe_api.create env ~name:"child"
                 ~core:M3_hw.Core_type.General_purpose)
         in
         ok (Vpe_api.run env vpe (fun _child_env -> a + b));
         check_int "lambda result via exit code" 9 (ok (Vpe_api.wait env vpe));
         0))

let test_vpe_wait_is_deferred () =
  ignore
    (run_app ~no_fs:true (fun _sys env ->
         let t0 = Engine.now env.engine in
         let vpe =
           ok (Vpe_api.create env ~name:"sleeper"
                 ~core:M3_hw.Core_type.General_purpose)
         in
         ok
           (Vpe_api.run env vpe (fun _ ->
                Process.wait 50_000;
                3));
         check_int "exit code" 3 (ok (Vpe_api.wait env vpe));
         let elapsed = Engine.now env.engine - t0 in
         check_bool "wait blocked for the child's 50k cycles" true
           (elapsed >= 50_000);
         0))

let test_vpe_no_free_pe () =
  let config = { Platform.default_config with pe_count = 2 } in
  (* PE0 kernel, PE1 the app itself: no PE left for a child. *)
  ignore
    (run_app ~platform_config:config ~no_fs:true (fun _sys env ->
         expect_errno Errno.E_no_pe
           (Vpe_api.create env ~name:"nope"
              ~core:M3_hw.Core_type.General_purpose);
         0))

let test_vpe_revoke_kills_child () =
  let engine = Engine.create () in
  let sys = Bootstrap.start ~no_fs:true engine in
  let child_progress = ref 0 in
  let exit =
    Bootstrap.launch sys ~name:"parent" (fun env ->
        let vpe =
          ok (Vpe_api.create env ~name:"runaway"
                ~core:M3_hw.Core_type.General_purpose)
        in
        ok
          (Vpe_api.run env vpe (fun _ ->
               (* Runs forever unless killed. *)
               let rec spin () =
                 Process.wait 1000;
                 incr child_progress;
                 spin ()
               in
               spin ()));
        Process.wait 10_000;
        ok (Vpe_api.revoke env vpe);
        0)
  in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys exit;
  let progress_at_kill = !child_progress in
  check_bool "child made some progress" true (progress_at_kill > 0);
  check_bool "child stopped after revoke" true (progress_at_kill < 15);
  check_int "no live vpes" 0 (Kernel.vpe_count sys.Bootstrap.kernel)

let test_child_talks_to_parent () =
  ignore
    (run_app ~no_fs:true (fun _sys env ->
         (* Parent creates a receive gate, delegates a send gate to the
            child; child sends a message; parent replies. *)
         let rgate = ok (Gate.create_recv env ~slot_order:7 ~slot_count:4) in
         let vpe =
           ok (Vpe_api.create env ~name:"talker"
                 ~core:M3_hw.Core_type.General_purpose)
         in
         let sgate =
           ok
             (Gate.create_send env rgate ~label:42L
                ~credits:(M3_dtu.Endpoint.Credits 2))
         in
         ok
           (Vpe_api.delegate env vpe ~own_sel:sgate.Gate.sg_user.Env.eu_sel
              ~other_sel:500);
         ok
           (Vpe_api.run env vpe (fun child_env ->
                let sg = Gate.send_gate_of_sel 500 in
                let reply_gate =
                  ok (Gate.create_recv child_env ~slot_order:7 ~slot_count:2)
                in
                let answer =
                  ok
                    (Gate.call child_env sg ~reply_gate
                       (Bytes.of_string "ping from child"))
                in
                if Bytes.to_string answer = "pong from parent" then 0 else 1));
         let msg = Gate.recv env rgate in
         Alcotest.(check int64) "label identifies sender" 42L msg.header.label;
         check_str "request" "ping from child" (Bytes.to_string msg.payload);
         ok
           (Gate.reply env rgate ~slot:msg.slot
              (Bytes.of_string "pong from parent"));
         check_int "child verified reply" 0 (ok (Vpe_api.wait env vpe));
         0))

(* --- m3fs ------------------------------------------------------------------ *)

let test_fs_write_read_roundtrip () =
  let sys =
    run_app (fun _sys env ->
         ok (Vfs.mount_root env);
         let file =
           ok
             (Vfs.open_ env "/hello.txt"
                ~flags:(Fs_proto.o_write lor Fs_proto.o_create))
         in
         ok (File.write_string env file "hello m3fs, extents and caps!");
         ok (File.close env file);
         let file = ok (Vfs.open_ env "/hello.txt" ~flags:Fs_proto.o_read) in
         let contents = ok (File.read_all env file ~max:1024) in
         ok (File.close env file);
         check_str "roundtrip" "hello m3fs, extents and caps!" contents;
         0)
  in
  (* The image itself stays consistent. *)
  match M3fs.current_image sys.Bootstrap.engine with
  | None -> Alcotest.fail "no fs image"
  | Some fs -> (
    match Fs_image.fsck fs with
    | Ok () -> ()
    | Error e -> Alcotest.failf "fsck: %s" e)

let test_fs_seeded_file_content () =
  let seed =
    [
      { M3fs.sd_path = "/data.bin"; sd_size = 8192; sd_blocks_per_extent = 4;
        sd_dir = false };
    ]
  in
  ignore
    (run_app
       ~fs:(fun ~dram -> { (M3fs.default_config ~dram) with seed })
       (fun _sys env ->
         ok (Vfs.mount_root env);
         let st = ok (Vfs.stat env "/data.bin") in
         check_int "size" 8192 st.Fs_proto.st_size;
         check_int "extents of 4 blocks" 2 st.Fs_proto.st_extents;
         let file = ok (Vfs.open_ env "/data.bin" ~flags:Fs_proto.o_read) in
         let contents = ok (File.read_all env file ~max:10_000) in
         ok (File.close env file);
         check_int "read it all" 8192 (String.length contents);
         0))

let test_fs_meta_ops () =
  ignore
    (run_app (fun _sys env ->
         ok (Vfs.mount_root env);
         ok (Vfs.mkdir env "/dir");
         ok (Vfs.mkdir env "/dir/sub");
         let f =
           ok
             (Vfs.open_ env "/dir/sub/x"
                ~flags:(Fs_proto.o_write lor Fs_proto.o_create))
         in
         ok (File.write_string env f "x");
         ok (File.close env f);
         let st = ok (Vfs.stat env "/dir/sub/x") in
         check_int "size 1" 1 st.Fs_proto.st_size;
         check_bool "not dir" false st.Fs_proto.st_is_dir;
         check_bool "dir is dir" true (ok (Vfs.stat env "/dir")).Fs_proto.st_is_dir;
         (* readdir *)
         (match ok (Vfs.readdir env "/dir" ~index:0) with
         | Some ("sub", _) -> ()
         | Some (n, _) -> Alcotest.failf "unexpected entry %s" n
         | None -> Alcotest.fail "empty dir");
         check_bool "end of dir" true (ok (Vfs.readdir env "/dir" ~index:1) = None);
         (* errors *)
         expect_errno Errno.E_not_found (Vfs.stat env "/nope");
         expect_errno Errno.E_not_empty (Vfs.unlink env "/dir");
         ok (Vfs.unlink env "/dir/sub/x");
         ok (Vfs.unlink env "/dir/sub");
         ok (Vfs.unlink env "/dir");
         expect_errno Errno.E_not_found (Vfs.stat env "/dir");
         0))

let test_fs_big_file_write_then_read () =
  (* 256 KiB across many appends; exercises extent allocation, close
     truncation and sequential reads with real data. *)
  let sys =
    run_app (fun _sys env ->
         ok (Vfs.mount_root env);
         let spm = Pe.spm env.pe in
         let buf = Env.alloc_spm env ~size:4096 in
         let f =
           ok
             (Vfs.open_ env "/big"
                ~flags:(Fs_proto.o_write lor Fs_proto.o_create))
         in
         let total = 256 * 1024 in
         let pattern i = Char.chr ((i * 7 + (i / 4096)) land 0xff) in
         let written = ref 0 in
         while !written < total do
           for i = 0 to 4095 do
             Store.write_u8 spm ~addr:(buf + i) (Char.code (pattern (!written + i)))
           done;
           ok (File.write env f ~local:buf ~len:4096);
           written := !written + 4096
         done;
         ok (File.close env f);
         let st = ok (Vfs.stat env "/big") in
         check_int "size" total st.Fs_proto.st_size;
         (* Over-allocation was truncated: 256 KiB = 256 blocks of 1 KiB
            = exactly one 256-block extent. *)
         check_int "one extent after truncate" 1 st.Fs_proto.st_extents;
         let f = ok (Vfs.open_ env "/big" ~flags:Fs_proto.o_read) in
         let read = ref 0 in
         let bad = ref 0 in
         let continue = ref true in
         while !continue do
           match ok (File.read env f ~local:buf ~len:4096) with
           | 0 -> continue := false
           | n ->
             for i = 0 to n - 1 do
               if Store.read_u8 spm ~addr:(buf + i)
                  <> Char.code (pattern (!read + i))
               then incr bad
             done;
             read := !read + n
         done;
         ok (File.close env f);
         check_int "read back all" total !read;
         check_int "no corrupted bytes" 0 !bad;
         0)
  in
  match M3fs.current_image sys.Bootstrap.engine with
  | None -> Alcotest.fail "no fs image"
  | Some fs -> (
    match Fs_image.fsck fs with
    | Ok () -> ()
    | Error e -> Alcotest.failf "fsck: %s" e)

let test_fs_seek () =
  ignore
    (run_app (fun _sys env ->
         ok (Vfs.mount_root env);
         let f =
           ok
             (Vfs.open_ env "/s"
                ~flags:(Fs_proto.o_write lor Fs_proto.o_create))
         in
         ok (File.write_string env f "0123456789");
         ok (File.close env f);
         let f = ok (Vfs.open_ env "/s" ~flags:Fs_proto.o_read) in
         ok (File.seek env f 4);
         let tail = ok (File.read_all env f ~max:100) in
         check_str "seek to 4" "456789" tail;
         ok (File.seek env f 0);
         check_str "rewind" "0123456789" (ok (File.read_all env f ~max:100));
         ok (File.close env f);
         0))

(* --- pipes ------------------------------------------------------------------- *)

let test_pipe_parent_reads_child_writes () =
  ignore
    (run_app ~no_fs:true (fun _sys env ->
         let reader = ok (Pipe.create_reader env ~ring_size:16384) in
         let vpe =
           ok (Vpe_api.create env ~name:"writer"
                 ~core:M3_hw.Core_type.General_purpose)
         in
         ok (Pipe.delegate_writer_end env reader ~vpe_sel:vpe.Vpe_api.vpe_sel);
         ok
           (Vpe_api.run env vpe (fun cenv ->
                let w = ok (Pipe.connect_writer cenv ~ring_size:16384) in
                let spm = Pe.spm cenv.Env.pe in
                let buf = Env.alloc_spm cenv ~size:2048 in
                for round = 0 to 9 do
                  Store.write_string spm ~addr:buf
                    (Printf.sprintf "[chunk %02d padded to 32 b]...." round);
                  ok (Pipe.write cenv w ~local:buf ~len:32)
                done;
                ok (Pipe.close_writer cenv w);
                0));
         let spm = Pe.spm env.pe in
         let buf = Env.alloc_spm env ~size:2048 in
         let collected = Buffer.create 512 in
         let continue = ref true in
         while !continue do
           match ok (Pipe.read env reader ~local:buf ~len:64) with
           | 0 -> continue := false
           | n ->
             Buffer.add_string collected (Store.read_string spm ~addr:buf ~len:n)
         done;
         check_int "total bytes" 320 (Buffer.length collected);
         check_bool "first chunk intact" true
           (String.length (Buffer.contents collected) >= 32
           && String.sub (Buffer.contents collected) 0 10 = "[chunk 00 ");
         check_int "child exit" 0 (ok (Vpe_api.wait env vpe));
         0))

let test_pipe_blocks_when_full () =
  (* Ring of 1 KiB, writer pushes 8 KiB: must block and interleave with
     the reader rather than lose data. *)
  ignore
    (run_app ~no_fs:true (fun _sys env ->
         let reader = ok (Pipe.create_reader env ~ring_size:1024) in
         let vpe =
           ok (Vpe_api.create env ~name:"flood"
                 ~core:M3_hw.Core_type.General_purpose)
         in
         ok (Pipe.delegate_writer_end env reader ~vpe_sel:vpe.Vpe_api.vpe_sel);
         ok
           (Vpe_api.run env vpe (fun cenv ->
                let w = ok (Pipe.connect_writer cenv ~ring_size:1024) in
                let buf = Env.alloc_spm cenv ~size:512 in
                let spm = Pe.spm cenv.Env.pe in
                for i = 0 to 15 do
                  Store.fill spm ~addr:buf ~len:512
                    (Char.chr (Char.code 'a' + i));
                  ok (Pipe.write cenv w ~local:buf ~len:512)
                done;
                ok (Pipe.close_writer cenv w);
                0));
         let buf = Env.alloc_spm env ~size:512 in
         let spm = Pe.spm env.pe in
         let histogram = Array.make 26 0 in
         let total = ref 0 in
         let continue = ref true in
         while !continue do
           match ok (Pipe.read env reader ~local:buf ~len:512) with
           | 0 -> continue := false
           | n ->
             for i = 0 to n - 1 do
               let c = Store.read_u8 spm ~addr:(buf + i) - Char.code 'a' in
               if c >= 0 && c < 26 then histogram.(c) <- histogram.(c) + 1
             done;
             total := !total + n
         done;
         check_int "all 8 KiB arrived" 8192 !total;
         for i = 0 to 15 do
           check_int (Printf.sprintf "letter %c complete" (Char.chr (97 + i)))
             512 histogram.(i)
         done;
         check_int "child exit" 0 (ok (Vpe_api.wait env vpe));
         0))

let test_pipe_parent_writes_child_reads () =
  (* The FFT-offload topology: parent obtains the child's send gate. *)
  ignore
    (run_app ~no_fs:true (fun _sys env ->
         let vpe =
           ok (Vpe_api.create env ~name:"sink"
                 ~core:M3_hw.Core_type.General_purpose)
         in
         let received = ref 0 in
         ok
           (Vpe_api.run env vpe (fun cenv ->
                let r = ok (Pipe.serve_reader cenv ~ring_size:8192) in
                let buf = Env.alloc_spm cenv ~size:1024 in
                let rec drain acc =
                  match ok (Pipe.read cenv r ~local:buf ~len:1024) with
                  | 0 -> acc
                  | n -> drain (acc + n)
                in
                received := drain 0;
                0));
         let w =
           ok
             (Pipe.connect_writer_to_child env ~vpe_sel:vpe.Vpe_api.vpe_sel
                ~ring_size:8192)
         in
         let buf = Env.alloc_spm env ~size:1024 in
         for _ = 1 to 20 do
           ok (Pipe.write env w ~local:buf ~len:1000)
         done;
         ok (Pipe.close_writer env w);
         check_int "child exit" 0 (ok (Vpe_api.wait env vpe));
         check_int "bytes received" 20_000 !received;
         0))

(* --- exec ------------------------------------------------------------------ *)

let test_exec_from_filesystem () =
  M3.Program.register ~name:"hello-prog" ~image_bytes:4096 (fun _env -> 42);
  ignore
    (run_app (fun _sys env ->
         ok (Vfs.mount_root env);
         (* Install the "binary": a real file whose content names the
            program, like a shebang. *)
         let f =
           ok
             (Vfs.open_ env "/bin-hello"
                ~flags:(Fs_proto.o_write lor Fs_proto.o_create))
         in
         ok (File.write_string env f (M3.Program.shebang "hello-prog"));
         ok (File.close env f);
         let vpe =
           ok (Vpe_api.create env ~name:"exec"
                 ~core:M3_hw.Core_type.General_purpose)
         in
         ok (Vpe_api.exec env vpe "/bin-hello");
         check_int "exec'd exit code" 42 (ok (Vpe_api.wait env vpe));
         0))

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "os.syscalls",
      [
        tc "boot and null syscall" test_boot_and_noop;
        tc "null syscall ≈ 200 cycles" test_null_syscall_costs_200_cycles;
        tc "xfer/os accounting split" test_noop_account_split;
        tc "req_mem and DTU access" test_req_mem_and_access;
        tc "derive_mem narrows perms and bounds" test_derive_mem_narrows;
        tc "revoke frees DRAM" test_revoke_frees_dram;
        tc "exit cleans up PE, DRAM, caps" test_exit_cleans_up;
      ] );
    ( "os.vpe",
      [
        tc "run lambda on another PE" test_vpe_run_lambda;
        tc "wait reply is deferred" test_vpe_wait_is_deferred;
        tc "no free PE" test_vpe_no_free_pe;
        tc "revoke kills child" test_vpe_revoke_kills_child;
        tc "child-parent channel via delegation" test_child_talks_to_parent;
        tc "exec from filesystem" test_exec_from_filesystem;
      ] );
    ( "os.m3fs",
      [
        tc "write/read roundtrip + fsck" test_fs_write_read_roundtrip;
        tc "seeded content visible" test_fs_seeded_file_content;
        tc "meta operations and errors" test_fs_meta_ops;
        tc "256 KiB file, extents, truncate" test_fs_big_file_write_then_read;
        tc "seek" test_fs_seek;
      ] );
    ( "os.pipe",
      [
        tc "parent reads, child writes" test_pipe_parent_reads_child_writes;
        tc "blocks when ring full, no loss" test_pipe_blocks_when_full;
        tc "parent writes, child reads" test_pipe_parent_writes_child_reads;
      ] );
  ]
