(* Regression tests for the fault-injection layer and the DTU bugfixes
   that shipped with it:

   - dropped deliveries NACK and refund the sender's credit (they used
     to leak Credits bandwidth permanently),
   - Waitq entries die when their waiter is resumed or gives up (no
     stale registrations after wait_any, no lost wakeups),
   - a process blocked in wait_msg observes endpoint invalidation
     instead of re-parking forever,
   - with no fault plan attached the machinery is invisible: cycle
     counts match a run that never links the fault library's state,
   - with a seeded plan, fault schedules and recovery are
     deterministic. *)

module Engine = M3_sim.Engine
module Process = M3_sim.Process
module Endpoint = M3_dtu.Endpoint
module Dtu = M3_dtu.Dtu
module Dtu_error = M3_dtu.Dtu_error
module Platform = M3_hw.Platform
module Pe = M3_hw.Pe
module Fabric = M3_noc.Fabric
module Plan = M3_fault.Plan
module Bootstrap = M3.Bootstrap
module Syscalls = M3.Syscalls
module Gate = M3.Gate
module Errno = M3.Errno
module Vpe_api = M3.Vpe_api
module Core_type = M3_hw.Core_type
module Obs = M3_obs.Obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected DTU error: %s" (Dtu_error.to_string e)

let ok_os = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected OS error: %s" (Errno.to_string e)

let make_platform ?(pe_count = 4) () =
  let engine = Engine.create () in
  let config = { Platform.default_config with pe_count } in
  (engine, Platform.create ~config engine)

let credits_of dtu ~ep =
  match Dtu.credits dtu ~ep with
  | Some (Endpoint.Credits n) -> n
  | _ -> -1

(* A plan whose schedule never injects anything: exercises the
   plan-enabled code paths (checksums, watchdog arming) without
   perturbing the simulation. *)
let quiet_config =
  {
    Plan.default_config with
    drop_prob = 0.0;
    link_fault_prob = 0.0;
    corrupt_prob = 0.0;
    stall_prob = 0.0;
  }

(* --- bugfix 1: dropped deliveries refund the sender's credit --------- *)

let test_ringbuffer_full_refunds_credit () =
  let engine, platform = make_platform () in
  let receiver = Platform.pe platform 0 and sender = Platform.pe platform 1 in
  ok
    (Dtu.config_local (Pe.dtu receiver) ~ep:1
       (Endpoint.Receive { buf_addr = 0x100; slot_order = 8; slot_count = 1 }));
  ok
    (Dtu.config_local (Pe.dtu sender) ~ep:2
       (Endpoint.Send
          {
            dst_pe = 0;
            dst_ep = 1;
            label = 1L;
            msg_order = 8;
            credits = Endpoint.Credits 2;
          }));
  ignore
    (Pe.spawn sender ~name:"s" (fun () ->
         (* First message fills the single slot; nobody acks it, so the
            second is rejected at the receiving DTU. *)
         ok (Dtu.send (Pe.dtu sender) ~ep:2 ~payload:(Bytes.of_string "one") ());
         ok (Dtu.send (Pe.dtu sender) ~ep:2 ~payload:(Bytes.of_string "two") ())));
  ignore (Engine.run engine);
  check_int "receiver dropped one" 1 (Dtu.msgs_dropped (Pe.dtu receiver));
  check_int "NACK refunded the credit" 1 (Dtu.credits_refunded (Pe.dtu sender));
  (* Two credits spent, one message delivered (still holding its
     credit), one refunded: exactly one credit left. *)
  check_int "credit back after drop" 1 (credits_of (Pe.dtu sender) ~ep:2)

let test_oversize_refunds_credit () =
  let engine, platform = make_platform () in
  let receiver = Platform.pe platform 0 and sender = Platform.pe platform 1 in
  (* 64-byte slots at the receiver, but the sender's EP allows 256-byte
     messages: an in-between payload passes the send-side check and is
     rejected on delivery. *)
  ok
    (Dtu.config_local (Pe.dtu receiver) ~ep:1
       (Endpoint.Receive { buf_addr = 0x100; slot_order = 6; slot_count = 4 }));
  ok
    (Dtu.config_local (Pe.dtu sender) ~ep:2
       (Endpoint.Send
          {
            dst_pe = 0;
            dst_ep = 1;
            label = 1L;
            msg_order = 8;
            credits = Endpoint.Credits 1;
          }));
  ignore
    (Pe.spawn sender ~name:"s" (fun () ->
         ok (Dtu.send (Pe.dtu sender) ~ep:2 ~payload:(Bytes.create 100) ())));
  ignore (Engine.run engine);
  check_int "receiver dropped it" 1 (Dtu.msgs_dropped (Pe.dtu receiver));
  check_int "refunded" 1 (Dtu.credits_refunded (Pe.dtu sender));
  check_int "full credit restored" 1 (credits_of (Pe.dtu sender) ~ep:2)

let test_no_recv_ep_refunds_credit () =
  let engine, platform = make_platform () in
  let receiver = Platform.pe platform 0 and sender = Platform.pe platform 1 in
  (* dst_ep 5 was never configured on the receiver. *)
  ok
    (Dtu.config_local (Pe.dtu sender) ~ep:2
       (Endpoint.Send
          {
            dst_pe = 0;
            dst_ep = 5;
            label = 1L;
            msg_order = 8;
            credits = Endpoint.Credits 1;
          }));
  ignore
    (Pe.spawn sender ~name:"s" (fun () ->
         ok (Dtu.send (Pe.dtu sender) ~ep:2 ~payload:Bytes.empty ())));
  ignore (Engine.run engine);
  check_int "receiver dropped it" 1 (Dtu.msgs_dropped (Pe.dtu receiver));
  check_int "refunded" 1 (Dtu.credits_refunded (Pe.dtu sender));
  check_int "full credit restored" 1 (credits_of (Pe.dtu sender) ~ep:2)

(* --- bugfix 2: waitq hygiene ----------------------------------------- *)

let test_waitq_cancel_and_sweep () =
  let q = Process.Waitq.create () in
  let got = ref [] in
  let a = Process.Waitq.register q (fun v -> got := ("a", v) :: !got) in
  let _b = Process.Waitq.register q (fun v -> got := ("b", v) :: !got) in
  check_int "two live waiters" 2 (Process.Waitq.waiters q);
  Process.Waitq.cancel a;
  check_int "cancelled entry not counted" 1 (Process.Waitq.waiters q);
  (* The cancelled entry must not absorb the wakeup. *)
  check_bool "signal reaches the live entry" true (Process.Waitq.signal q 1);
  Alcotest.(check (list (pair string int))) "only b fired" [ ("b", 1) ] !got;
  check_int "no stale registrations" 0 (Process.Waitq.waiters q);
  check_bool "signal with nobody waiting" false (Process.Waitq.signal q 2)

let test_wait_any_leaves_no_stale_waiters () =
  let engine, platform = make_platform () in
  let receiver = Platform.pe platform 0 and sender = Platform.pe platform 1 in
  ok
    (Dtu.config_local (Pe.dtu receiver) ~ep:1
       (Endpoint.Receive { buf_addr = 0x100; slot_order = 8; slot_count = 4 }));
  ok
    (Dtu.config_local (Pe.dtu receiver) ~ep:3
       (Endpoint.Receive { buf_addr = 0x900; slot_order = 8; slot_count = 4 }));
  ok
    (Dtu.config_local (Pe.dtu sender) ~ep:2
       (Endpoint.Send
          {
            dst_pe = 0;
            dst_ep = 1;
            label = 1L;
            msg_order = 8;
            credits = Endpoint.Credits 4;
          }));
  let woke_ep = ref (-1) in
  ignore
    (Pe.spawn receiver ~name:"r" (fun () ->
         let ep, msg = Dtu.wait_any (Pe.dtu receiver) ~eps:[ 1; 3 ] in
         woke_ep := ep;
         Dtu.ack (Pe.dtu receiver) ~ep ~slot:msg.slot));
  ignore
    (Pe.spawn sender ~name:"s" (fun () ->
         ok (Dtu.send (Pe.dtu sender) ~ep:2 ~payload:(Bytes.of_string "x") ())));
  ignore (Engine.run engine);
  check_int "woken by EP 1" 1 !woke_ep;
  (* The registration on the EP that did not fire must be gone too —
     a later signal there must not be absorbed by a dead closure. *)
  check_int "no waiters on ep1" 0 (Dtu.waiters (Pe.dtu receiver) ~ep:1);
  check_int "no waiters on ep3" 0 (Dtu.waiters (Pe.dtu receiver) ~ep:3)

(* --- bugfix 3: invalidation wakes blocked receivers ------------------- *)

let wait_msg_outcome action =
  let engine, platform = make_platform () in
  let kernel = Platform.pe platform 0 and app = Platform.pe platform 1 in
  ok
    (Dtu.config_local (Pe.dtu app) ~ep:1
       (Endpoint.Receive { buf_addr = 0x100; slot_order = 8; slot_count = 4 }));
  let outcome = ref `Pending in
  ignore
    (Pe.spawn app ~name:"app" (fun () ->
         match Dtu.wait_msg (Pe.dtu app) ~ep:1 with
         | _msg -> outcome := `Got_msg
         | exception Dtu_error.Error e -> outcome := `Error e));
  ignore
    (Pe.spawn kernel ~name:"kernel" (fun () ->
         Process.wait 50;
         ok (action (Pe.dtu kernel))));
  ignore (Engine.run engine);
  !outcome

let check_invalid_ep name outcome =
  check_bool name true (outcome = `Error Dtu_error.Invalid_ep)

let test_wait_msg_observes_invalidate () =
  check_invalid_ep "wait_msg raises Invalid_ep on ext_invalidate"
    (wait_msg_outcome (fun kdtu -> Dtu.ext_invalidate kdtu ~target:1 ~ep:1))

let test_wait_msg_observes_reset () =
  check_invalid_ep "wait_msg raises Invalid_ep on ext_reset"
    (wait_msg_outcome (fun kdtu -> Dtu.ext_reset kdtu ~target:1))

(* --- zero-cost and determinism ---------------------------------------- *)

(* A fixed message workload: [rounds] send+reply roundtrips between two
   PEs, payload integrity checked at the receiver. Returns the cycle
   count at the moment the sender finishes (completion point, immune to
   unrelated late timers) plus recovery counters. *)
let roundtrips ?plan ~rounds () =
  let engine, platform = make_platform () in
  Option.iter (fun p -> Fabric.set_faults (Platform.fabric platform) p) plan;
  let receiver = Platform.pe platform 0 and sender = Platform.pe platform 1 in
  ok
    (Dtu.config_local (Pe.dtu receiver) ~ep:1
       (Endpoint.Receive { buf_addr = 0x100; slot_order = 8; slot_count = 8 }));
  ok
    (Dtu.config_local (Pe.dtu sender) ~ep:2
       (Endpoint.Send
          {
            dst_pe = 0;
            dst_ep = 1;
            label = 1L;
            msg_order = 8;
            credits = Endpoint.Credits 4;
          }));
  ok
    (Dtu.config_local (Pe.dtu sender) ~ep:3
       (Endpoint.Receive { buf_addr = 0x900; slot_order = 8; slot_count = 8 }));
  let received = ref 0 and intact = ref true and done_at = ref 0 in
  ignore
    (Pe.spawn receiver ~name:"r" (fun () ->
         for _ = 1 to rounds do
           let msg = Dtu.wait_msg (Pe.dtu receiver) ~ep:1 in
           if Bytes.to_string msg.payload <> "payload-under-test" then
             intact := false;
           incr received;
           ok
             (Dtu.reply (Pe.dtu receiver) ~ep:1 ~slot:msg.slot
                ~payload:(Bytes.of_string "ok"))
         done));
  ignore
    (Pe.spawn sender ~name:"s" (fun () ->
         for _ = 1 to rounds do
           ok
             (Dtu.send (Pe.dtu sender) ~ep:2
                ~payload:(Bytes.of_string "payload-under-test")
                ~reply:(3, 0L) ());
           let reply = Dtu.wait_msg (Pe.dtu sender) ~ep:3 in
           Dtu.ack (Pe.dtu sender) ~ep:3 ~slot:reply.slot
         done;
         done_at := Engine.now engine));
  ignore (Engine.run engine);
  check_int "all messages arrived" rounds !received;
  check_bool "payloads intact" true !intact;
  let retransmits =
    Dtu.retransmits (Pe.dtu sender) + Dtu.retransmits (Pe.dtu receiver)
  in
  let expired =
    Dtu.msgs_expired (Pe.dtu sender) + Dtu.msgs_expired (Pe.dtu receiver)
  in
  (!done_at, retransmits, expired)

let test_no_plan_is_zero_cost () =
  let base_cycles, base_retx, _ = roundtrips ~rounds:10 () in
  check_int "no retransmit machinery without a plan" 0 base_retx;
  (* An attached plan that never fires must not shift time either:
     checksums and outcome draws are free in simulated cycles. *)
  let quiet = Plan.create ~config:quiet_config ~seed:3 () in
  let quiet_cycles, quiet_retx, _ = roundtrips ~plan:quiet ~rounds:10 () in
  check_int "quiet plan: no retransmits" 0 quiet_retx;
  check_int "quiet plan: identical cycle count" base_cycles quiet_cycles

let lossy_config =
  {
    quiet_config with
    drop_prob = 0.2;
    max_retries = 8;
    retry_base = 16;
  }

let lossy_run ~seed =
  roundtrips ~plan:(Plan.create ~config:lossy_config ~seed ()) ~rounds:30 ()

let test_seeded_plan_is_deterministic () =
  let c1, r1, e1 = lossy_run ~seed:42 in
  let c2, r2, e2 = lossy_run ~seed:42 in
  check_int "same seed, same completion cycle" c1 c2;
  check_int "same seed, same retransmit count" r1 r2;
  check_int "same seed, same expiries" e1 e2

let test_retransmit_rides_through_drops () =
  let cycles, retransmits, expired = lossy_run ~seed:7 in
  (* 60 transfers at a 20% drop rate: recovery must actually have
     happened, and the retry budget (8) makes expiry implausible. *)
  check_bool "losses were retransmitted" true (retransmits > 0);
  check_int "nothing expired" 0 expired;
  let base_cycles, _, _ = roundtrips ~rounds:30 () in
  check_bool "drops cost time" true (cycles > base_cycles)

(* --- crash containment: zero-cost and determinism ---------------------- *)

(* A supervised child workload through the whole OS stack. Returns the
   cycle at which main finished — the completion point, immune to the
   watchdog timers a plan leaves in the engine's heap past it. *)
let supervised_run ?faults () =
  let engine = Engine.create () in
  let sys = Bootstrap.start ~no_fs:true ?faults engine in
  let done_at = ref 0 in
  let exit =
    Bootstrap.launch sys ~name:"main" (fun env ->
        let r =
          Vpe_api.run_supervised env ~name:"worker"
            ~core:Core_type.General_purpose (fun cenv ->
              for _ = 1 to 10 do
                ok_os (Syscalls.noop cenv)
              done;
              0)
        in
        done_at := Engine.now engine;
        match r with Ok 0 -> 0 | _ -> 1)
  in
  ignore (Engine.run engine);
  check_int "supervised workload finished" 0
    (Option.value ~default:min_int (Process.Ivar.peek exit));
  !done_at

(* The crash-containment layer (prober, watchdogs, abort bookkeeping)
   must be invisible without a plan that can fire: same completion
   cycle with no plan and with a quiet one. *)
let test_supervision_is_zero_cost () =
  let base = supervised_run () in
  let quiet = Plan.create ~config:quiet_config ~seed:9 () in
  check_int "quiet plan: identical completion cycle" base
    (supervised_run ~faults:quiet ())

(* One seeded PE crash mid-workload, full event log captured. Two runs
   with the same seed must produce byte-identical logs — the prober,
   the containment sweep and the restart are all deterministic. *)
let crash_event_log ~seed =
  let engine = Engine.create () in
  let mem = Obs.Memory.create () in
  let obs = Obs.of_engine engine in
  Obs.attach obs (Obs.Memory.sink mem);
  (* no_fs placement: main = pe1, worker = pe2; kill the worker's PE
     on its 10th DTU command, deep in the noop loop. *)
  let config = { quiet_config with crashes = [ (2, 10) ] } in
  let plan = Plan.create ~config ~seed () in
  let sys = Bootstrap.start ~no_fs:true ~obs ~faults:plan engine in
  let exit =
    Bootstrap.launch sys ~name:"main" (fun env ->
        match
          Vpe_api.run_supervised env ~name:"worker"
            ~core:Core_type.General_purpose (fun cenv ->
              for _ = 1 to 40 do
                ok_os (Syscalls.noop cenv)
              done;
              0)
        with
        | Ok 0 -> 0
        | _ -> 1)
  in
  ignore (Engine.run engine);
  check_int "crashed workload recovered" 0
    (Option.value ~default:min_int (Process.Ivar.peek exit));
  check_int "exactly one crash fired" 1 (Plan.crashes_injected plan);
  Obs.Memory.to_string mem

let test_seeded_crash_identical_logs () =
  let log1 = crash_event_log ~seed:21 in
  let log2 = crash_event_log ~seed:21 in
  check_bool "log not empty" true (String.length log1 > 0);
  Alcotest.(check string) "same seed, byte-identical event logs" log1 log2

(* --- kernel watchdog --------------------------------------------------- *)

let test_dead_service_times_out () =
  let engine = Engine.create () in
  let plan = Plan.create ~config:quiet_config ~seed:11 () in
  let sys = Bootstrap.start ~no_fs:true ~faults:plan engine in
  ignore
    (Bootstrap.launch sys ~name:"dead-srv" (fun env ->
         let kr = ok_os (Gate.create_recv env ~slot_order:8 ~slot_count:4) in
         let cr = ok_os (Gate.create_recv env ~slot_order:8 ~slot_count:4) in
         ignore
           (ok_os
              (Syscalls.create_srv env ~name:"dead" ~krgate_sel:kr.Gate.rg_sel
                 ~crgate_sel:cr.Gate.rg_sel));
         (* Never serve a request — and never exit, which would
            deregister the service. *)
         Process.Waitq.park (Process.Waitq.create ())));
  let client =
    Bootstrap.launch sys ~name:"client" (fun env ->
        (* Give the service time to register. *)
        Process.wait 1_000;
        match Syscalls.open_sess env ~srv:"dead" ~arg:0 with
        | Error Errno.E_timeout -> 0
        | Ok _ -> 1
        | Error _ -> 2)
  in
  ignore (Engine.run engine);
  check_int "open_sess times out instead of hanging" 0
    (Option.value ~default:(-1) (Process.Ivar.peek client))

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "fault.credits",
      [
        tc "ringbuffer-full drop refunds credit"
          test_ringbuffer_full_refunds_credit;
        tc "oversize drop refunds credit" test_oversize_refunds_credit;
        tc "no-recv-EP drop refunds credit" test_no_recv_ep_refunds_credit;
      ] );
    ( "fault.waitq",
      [
        tc "cancelled entries neither fire nor absorb signals"
          test_waitq_cancel_and_sweep;
        tc "wait_any leaves no stale waiters"
          test_wait_any_leaves_no_stale_waiters;
        tc "wait_msg observes ext_invalidate" test_wait_msg_observes_invalidate;
        tc "wait_msg observes ext_reset" test_wait_msg_observes_reset;
      ] );
    ( "fault.injection",
      [
        tc "no plan / quiet plan are zero-cost" test_no_plan_is_zero_cost;
        tc "seeded plans are deterministic" test_seeded_plan_is_deterministic;
        tc "retransmit rides through 20% drops"
          test_retransmit_rides_through_drops;
        tc "dead service answers with E_timeout" test_dead_service_times_out;
      ] );
    ( "fault.crash",
      [
        tc "supervision layer is zero-cost without a plan"
          test_supervision_is_zero_cost;
        tc "seeded pe_crash: byte-identical event logs"
          test_seeded_crash_identical_logs;
      ] );
  ]
