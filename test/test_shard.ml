(* Regression tests for the sharded-m3fs PR:

   - the consistent-hash ring spreads realistic top-level directories
     over all shards (the original FNV-only hash put "i0".."i15" on
     one narrow arc and starved every shard but one),
   - m3fs registry state is keyed by engine: two simulations in one
     process never alias, and [forget] reclaims exactly one engine's
     entries,
   - the kernel rejects a second service under a taken name with
     [E_exists] instead of silently replacing it,
   - with [fs_instances = 2] the seed list is partitioned so each
     shard's image holds exactly its own directories, while a client
     behind [mount_sharded] still sees every path,
   - a singleton shard set is bit-identical to a classic mount: same
     event log, same final cycle. *)

module Engine = M3_sim.Engine
module Platform = M3_hw.Platform
module Store = M3_mem.Store
module Bootstrap = M3.Bootstrap
module Env = M3.Env
module Errno = M3.Errno
module Syscalls = M3.Syscalls
module Gate = M3.Gate
module Vfs = M3.Vfs
module File = M3.File
module Fs_proto = M3.Fs_proto
module M3fs = M3.M3fs
module Fs_image = M3.Fs_image
module Shard = M3.Shard
module Obs = M3_obs.Obs
module Event = M3_obs.Event

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ok = Errno.ok_exn

let exit_code ivar =
  Option.value ~default:min_int (M3_sim.Process.Ivar.peek ivar)

(* --- the ring ---------------------------------------------------------- *)

let test_top_component () =
  Alcotest.(check string) "nested" "a" (Shard.top_component "/a/b/c");
  Alcotest.(check string) "top-level file" "cat-in0" (Shard.top_component "/cat-in0");
  Alcotest.(check string) "no leading slash" "x" (Shard.top_component "x/y");
  Alcotest.(check string) "root" "" (Shard.top_component "/")

let test_single_shard_owner_is_zero () =
  let ring = Shard.create ~names:[| "m3fs" |] () in
  List.iter
    (fun p -> check_int ("owner of " ^ p) 0 (Shard.owner ring ~path:p))
    [ "/"; "/a"; "/i13/deep/file"; "x" ]

(* The fig6x workload uses per-instance directories "/i0".."/i15";
   these keys differ only in their digits, which is exactly what broke
   the unfinalized hash. Every shard must own at least one of them and
   none may own more than half. *)
let test_ring_balance () =
  List.iter
    (fun shards ->
      let names = Array.init shards (Printf.sprintf "m3fs.%d") in
      let ring = Shard.create ~names () in
      check_int "shards" shards (Shard.shards ring);
      let load = Array.make shards 0 in
      for i = 0 to 15 do
        let o = Shard.owner ring ~path:(Printf.sprintf "/i%d" i) in
        check_bool "owner in range" true (o >= 0 && o < shards);
        load.(o) <- load.(o) + 1
      done;
      Array.iteri
        (fun s n ->
          check_bool
            (Printf.sprintf "%d shards: shard %d owns %d of 16" shards s n)
            true
            (n >= 1 && n <= 8))
        load)
    [ 2; 4 ]

let test_owner_is_deterministic () =
  let ring1 = Shard.create ~names:[| "m3fs.0"; "m3fs.1"; "m3fs.2" |] () in
  let ring2 = Shard.create ~names:[| "m3fs.0"; "m3fs.1"; "m3fs.2" |] () in
  for i = 0 to 31 do
    let p = Printf.sprintf "/dir%d/f" i in
    check_int ("stable owner of " ^ p) (Shard.owner ring1 ~path:p)
      (Shard.owner ring2 ~path:p)
  done

(* --- per-engine registries --------------------------------------------- *)

let seed_file path =
  { M3fs.sd_path = path; sd_size = 4096; sd_blocks_per_extent = 4;
    sd_dir = false }

(* Boots a full system whose filesystem is seeded with [paths], runs a
   trivial app, and returns the engine for registry inspection. *)
let booted_with ?platform_config ?(fs_instances = 1) ~paths main =
  let engine = Engine.create () in
  let fs ~dram =
    { (M3fs.default_config ~dram) with seed = List.map seed_file paths }
  in
  let sys = Bootstrap.start ?platform_config ~fs ~fs_instances engine in
  let exit = Bootstrap.launch sys ~name:"app" (fun env -> main sys env) in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys exit;
  engine

let has image path =
  match Fs_image.lookup image path with Ok _ -> true | Error _ -> false

let image_exn ~engine ~srv_name =
  match M3fs.image_of ~engine ~srv_name with
  | Some img -> img
  | None -> Alcotest.failf "no image registered for %s" srv_name

let test_two_engines_do_not_alias () =
  let noop _sys env =
    ok (Vfs.mount_root env);
    0
  in
  let engine_a = booted_with ~paths:[ "/only-a" ] noop in
  let engine_b = booted_with ~paths:[ "/only-b" ] noop in
  (* Both engines' m3fs state is still registered — under one key
     each, not one shared "m3fs" slot clobbered by whoever booted
     last. *)
  let image_a = image_exn ~engine:engine_a ~srv_name:"m3fs" in
  let image_b = image_exn ~engine:engine_b ~srv_name:"m3fs" in
  check_bool "engine A sees its seed" true (has image_a "/only-a");
  check_bool "engine A lacks B's seed" false (has image_a "/only-b");
  check_bool "engine B sees its seed" true (has image_b "/only-b");
  check_bool "engine B lacks A's seed" false (has image_b "/only-a");
  (* [forget] reclaims one engine's entries and only that engine's. *)
  M3fs.forget ~engine:engine_a;
  check_bool "A's registry entries are gone" true
    (M3fs.current_image engine_a = None);
  check_bool "B's survive A's forget" true
    (M3fs.current_image engine_b <> None);
  M3fs.forget ~engine:engine_b;
  check_bool "B's registry entries are gone" true
    (M3fs.current_image engine_b = None)

let test_duplicate_service_name_is_e_exists () =
  let engine = Engine.create () in
  let sys = Bootstrap.start ~no_fs:true engine in
  let app =
    Bootstrap.launch sys ~name:"dup-srv" (fun env ->
        let recv () = ok (Gate.create_recv env ~slot_order:8 ~slot_count:4) in
        let kr = recv () and cr = recv () in
        ignore
          (ok
             (Syscalls.create_srv env ~name:"dup" ~krgate_sel:kr.Gate.rg_sel
                ~crgate_sel:cr.Gate.rg_sel));
        let kr2 = recv () and cr2 = recv () in
        match
          Syscalls.create_srv env ~name:"dup" ~krgate_sel:kr2.Gate.rg_sel
            ~crgate_sel:cr2.Gate.rg_sel
        with
        | Error Errno.E_exists -> 0
        | Ok _ -> 1
        | Error _ -> 2)
  in
  ignore (Engine.run engine);
  check_int "second create_srv under a taken name fails with E_exists" 0
    (exit_code app)

(* --- sharded boot ------------------------------------------------------ *)

(* Two top-level directories that the 2-shard ring assigns to
   different shards; found by scanning so the test does not bake in
   hash values. *)
let disjoint_dirs () =
  let ring = Shard.create ~names:[| "m3fs.0"; "m3fs.1" |] () in
  let dir_of shard =
    let rec scan i =
      if i > 64 then Alcotest.failf "no directory hashing to shard %d" shard
      else
        let d = Printf.sprintf "/d%d" i in
        if Shard.owner ring ~path:d = shard then d else scan (i + 1)
    in
    scan 0
  in
  (dir_of 0, dir_of 1)

let test_two_shards_partition_the_seed () =
  let da, db = disjoint_dirs () in
  let saw_resolve = ref false in
  let engine = Engine.create () in
  let fs ~dram =
    { (M3fs.default_config ~dram) with seed = [ seed_file da; seed_file db ] }
  in
  let config = { Platform.default_config with dram_size = 96 * 1024 * 1024 } in
  let obs = Obs.of_engine engine in
  Obs.attach obs
    {
      Obs.sink_name = "resolve-probe";
      sink_emit =
        (fun ~at:_ ev ->
          match ev with Event.Fs_shard _ -> saw_resolve := true | _ -> ());
    };
  let sys =
    Bootstrap.start ~platform_config:config ~fs ~fs_instances:2 ~obs engine
  in
  Alcotest.(check (list string))
    "two shard services in ring order" [ "m3fs.0"; "m3fs.1" ]
    sys.Bootstrap.fs_services;
  let exit =
    Bootstrap.launch sys ~name:"app" (fun env ->
        ok
          (Vfs.mount_sharded env ~path:"/" ~services:sys.Bootstrap.fs_services);
        (* Both files are reachable through the one sharded mount even
           though no single server holds both. *)
        let st_a = ok (Vfs.stat env da) and st_b = ok (Vfs.stat env db) in
        check_int "size of shard-0 file" 4096 st_a.Fs_proto.st_size;
        check_int "size of shard-1 file" 4096 st_b.Fs_proto.st_size;
        0)
  in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys exit;
  check_bool "client emitted fs.shard.resolve events" true !saw_resolve;
  (* White box: each shard's image holds exactly its own directory. *)
  let img0 = image_exn ~engine ~srv_name:"m3fs.0" in
  let img1 = image_exn ~engine ~srv_name:"m3fs.1" in
  check_bool (da ^ " on shard 0") true (has img0 da);
  check_bool (db ^ " not on shard 0") false (has img0 db);
  check_bool (db ^ " on shard 1") true (has img1 db);
  check_bool (da ^ " not on shard 1") false (has img1 da);
  M3fs.forget ~engine

(* --- singleton shard set is zero-cost ---------------------------------- *)

(* The same seeded workload under a classic root mount and under a
   one-element shard set: the logs must match byte for byte and the
   runs must take the same number of cycles (the guard that sharding
   machinery costs nothing unless actually sharded, in the style of
   test_fault's zero-cost checks). *)
let logged_run ~sharded =
  let engine = Engine.create () in
  let mem = Obs.Memory.create () in
  let obs = Obs.of_engine engine in
  Obs.attach obs (Obs.Memory.sink mem);
  let fs ~dram =
    { (M3fs.default_config ~dram) with seed = [ seed_file "/zc" ] }
  in
  let sys = Bootstrap.start ~fs ~obs engine in
  let exit =
    Bootstrap.launch sys ~name:"app" (fun env ->
        (if sharded then
           ok
             (Vfs.mount_sharded env ~path:"/"
                ~services:sys.Bootstrap.fs_services)
         else ok (Vfs.mount_root env));
        let f = ok (Vfs.open_ env "/zc" ~flags:Fs_proto.o_read) in
        let buf = Env.alloc_spm env ~size:1024 in
        let rec drain () =
          match ok (File.read env f ~local:buf ~len:1024) with
          | 0 -> ()
          | _ -> drain ()
        in
        drain ();
        ok (File.close env f);
        0)
  in
  let final = Engine.run engine in
  Bootstrap.expect_exit sys exit;
  M3fs.forget ~engine;
  (Obs.Memory.to_string mem, final)

let test_singleton_shard_set_is_bit_identical () =
  let log_plain, cycles_plain = logged_run ~sharded:false in
  let log_sharded, cycles_sharded = logged_run ~sharded:true in
  check_bool "log not empty" true (String.length log_plain > 0);
  Alcotest.(check string)
    "byte-identical event logs" log_plain log_sharded;
  check_int "identical final cycle" cycles_plain cycles_sharded

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "shard.ring",
      [
        tc "top_component" test_top_component;
        tc "single shard owns everything" test_single_shard_owner_is_zero;
        tc "i0..i15 spread over every shard" test_ring_balance;
        tc "owner is deterministic" test_owner_is_deterministic;
      ] );
    ( "shard.registry",
      [
        tc "two engines never alias m3fs state" test_two_engines_do_not_alias;
        tc "duplicate service name is E_exists"
          test_duplicate_service_name_is_e_exists;
      ] );
    ( "shard.sharded",
      [
        tc "two shards partition the seed" test_two_shards_partition_the_seed;
        tc "singleton shard set is bit-identical"
          test_singleton_shard_set_is_bit_identical;
      ] );
  ]
