(* Tests of the workload generators and the two trace replayers —
   including an end-to-end check that replaying tar on M3 really
   produces the archive in m3fs. *)

module Engine = M3_sim.Engine
module Trace = M3_trace.Trace
module Workloads = M3_trace.Workloads
module Machine = M3_linux.Machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- generators ----------------------------------------------------------- *)

let test_member_sizes_spec () =
  (* §5.6: files between 60 and 500 KiB, 1.2 MiB in total. *)
  List.iter
    (fun seed ->
      let sizes = Workloads.member_sizes ~seed in
      List.iter
        (fun s ->
          check_bool "size in range" true (s >= 60 * 1024 && s <= 500 * 1024))
        sizes;
      let total = List.fold_left ( + ) 0 sizes in
      check_bool
        (Printf.sprintf "total ≈ 1.2 MiB (got %d)" total)
        true
        (total >= 1_200 * 1024 && total <= 1_200 * 1024 + 500 * 1024))
    [ 1; 2; 42; 2016 ]

let test_generators_deterministic () =
  let t1 = (Workloads.tar ~seed:7).Workloads.sp_trace in
  let t2 = (Workloads.tar ~seed:7).Workloads.sp_trace in
  let t3 = (Workloads.tar ~seed:8).Workloads.sp_trace in
  check_bool "same seed, same trace" true (t1 = t2);
  check_bool "different seed, different trace" true (t1 <> t3)

let test_find_has_40_items () =
  let spec = Workloads.find ~seed:1 in
  (* 1 root + 7 dirs + 4 root files + 28 sub files = 40 items. *)
  check_int "40 items seeded" 40 (List.length spec.Workloads.sp_seeds);
  let stats =
    List.length
      (List.filter
         (function Trace.T_stat _ -> true | _ -> false)
         spec.Workloads.sp_trace)
  in
  check_bool "one stat per item (minus dirs walked)" true (stats >= 39)

let test_tar_moves_all_bytes () =
  let spec = Workloads.tar ~seed:5 in
  let summary = Trace.summarize spec.Workloads.sp_trace in
  let input_total =
    List.fold_left ( + ) 0 (Workloads.member_sizes ~seed:5)
  in
  check_bool "data moved >= input size" true (summary.Trace.n_data_bytes >= input_total);
  check_bool "has meta ops" true (summary.Trace.n_meta > 10)

let test_sqlite_compute_dominates () =
  let spec = Workloads.sqlite ~seed:1 in
  let summary = Trace.summarize spec.Workloads.sp_trace in
  (* "computation makes up the majority of the execution time" (§5.6) *)
  check_bool "compute >> data" true
    (summary.Trace.n_compute > 10 * summary.Trace.n_data_bytes)

let test_prefixed_rewrites_paths () =
  let spec = Workloads.prefixed ~prefix:"/i3" (Workloads.tar ~seed:1) in
  List.iter
    (fun sd ->
      let p = sd.M3.M3fs.sd_path in
      check_bool "seed under prefix" true
        (String.length p >= 3 && String.sub p 0 3 = "/i3"))
    spec.Workloads.sp_seeds;
  List.iter
    (function
      | Trace.T_open { path; _ } | Trace.T_stat { path } ->
        check_bool "op under prefix" true (String.sub path 0 3 = "/i3")
      | _ -> ())
    spec.Workloads.sp_trace

(* --- linux replay ------------------------------------------------------------ *)

let test_replay_linux_runs_all () =
  List.iter
    (fun spec ->
      let m = Machine.create M3_linux.Arch.xtensa in
      M3_trace.Replay_linux.apply_seeds m spec.Workloads.sp_seeds;
      M3_trace.Replay_linux.run m spec.Workloads.sp_trace;
      check_bool
        (spec.Workloads.sp_name ^ " consumed cycles")
        true (Machine.cycles m > 1000))
    (Workloads.all ~seed:3)

let test_replay_linux_tar_produces_archive () =
  let spec = Workloads.tar ~seed:3 in
  let m = Machine.create M3_linux.Arch.xtensa in
  M3_trace.Replay_linux.apply_seeds m spec.Workloads.sp_seeds;
  M3_trace.Replay_linux.run m spec.Workloads.sp_trace;
  let expect =
    List.fold_left (fun acc s -> acc + 512 + s) 1024 (Workloads.member_sizes ~seed:3)
  in
  check_int "archive size"
    expect
    (Option.get (M3_linux.Tmpfs.file_size (Machine.fs m) "/out.tar"))

(* --- m3 replay ------------------------------------------------------------------ *)

let run_m3_replay spec =
  let engine = Engine.create () in
  let fs ~dram =
    { (M3.M3fs.default_config ~dram) with seed = spec.Workloads.sp_seeds }
  in
  let sys = M3.Bootstrap.start ~fs engine in
  let exit =
    M3.Bootstrap.launch sys ~name:"replay" (fun env ->
        M3.Errno.ok_exn (M3.Vfs.mount_root env);
        match M3_trace.Replay_m3.run env spec.Workloads.sp_trace with
        | Ok () -> 0
        | Error e -> failwith (M3.Errno.to_string e))
  in
  ignore (Engine.run engine);
  M3.Bootstrap.expect_exit sys exit;
  engine

let test_replay_m3_tar_produces_archive () =
  let spec = Workloads.tar ~seed:3 in
  let engine = run_m3_replay spec in
  match M3.M3fs.current_image engine with
  | None -> Alcotest.fail "no image"
  | Some fs ->
    let ino, _ = M3.Errno.ok_exn (M3.Fs_image.lookup fs "/out.tar") in
    let expect =
      List.fold_left (fun acc s -> acc + 512 + s) 1024
        (Workloads.member_sizes ~seed:3)
    in
    check_int "archive size in m3fs" expect (M3.Fs_image.file_size fs ~ino);
    (match M3.Fs_image.fsck fs with
    | Ok () -> ()
    | Error e -> Alcotest.failf "fsck after tar: %s" e)

let test_replay_m3_untar_creates_members () =
  let spec = Workloads.untar ~seed:3 in
  let engine = run_m3_replay spec in
  match M3.M3fs.current_image engine with
  | None -> Alcotest.fail "no image"
  | Some fs ->
    List.iteri
      (fun i size ->
        let path = Printf.sprintf "/out/f%d" i in
        let ino, _ = M3.Errno.ok_exn (M3.Fs_image.lookup fs path) in
        check_int (path ^ " size") size (M3.Fs_image.file_size fs ~ino))
      (Workloads.member_sizes ~seed:3)

let test_replay_m3_find_and_sqlite () =
  ignore (run_m3_replay (Workloads.find ~seed:3));
  ignore (run_m3_replay (Workloads.sqlite ~seed:3))

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "trace.generators",
      [
        tc "member sizes follow §5.6" test_member_sizes_spec;
        tc "deterministic per seed" test_generators_deterministic;
        tc "find tree has 40 items" test_find_has_40_items;
        tc "tar moves all input bytes" test_tar_moves_all_bytes;
        tc "sqlite is compute-bound" test_sqlite_compute_dominates;
        tc "prefixed rewrites paths" test_prefixed_rewrites_paths;
      ] );
    ( "trace.replay_linux",
      [
        tc "all workloads replay" test_replay_linux_runs_all;
        tc "tar produces the archive" test_replay_linux_tar_produces_archive;
      ] );
    ( "trace.replay_m3",
      [
        tc "tar produces the archive in m3fs" test_replay_m3_tar_produces_archive;
        tc "untar creates all members" test_replay_m3_untar_creates_members;
        tc "find and sqlite replay" test_replay_m3_find_and_sqlite;
      ] );
  ]
