(* Second batch of OS tests: marshalling, endpoint multiplexing,
   capability-tree internals, resource exhaustion, and service-protocol
   error paths. *)

module Engine = M3_sim.Engine
module Process = M3_sim.Process
module Perm = M3_mem.Perm

module Bootstrap = M3.Bootstrap
module Env = M3.Env
module Errno = M3.Errno
module Msgbuf = M3.Msgbuf
module Kdata = M3.Kdata
module Gate = M3.Gate
module Epmux = M3.Epmux
module Syscalls = M3.Syscalls
module Kernel = M3.Kernel
module Program = M3.Program

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ok = Errno.ok_exn

let run_app ?platform_config ?(no_fs = true) main =
  let engine = Engine.create () in
  let sys = Bootstrap.start ?platform_config ~no_fs engine in
  let exit = Bootstrap.launch sys ~name:"app2" (fun env -> main sys env) in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys exit

(* --- msgbuf ------------------------------------------------------------ *)

let test_msgbuf_roundtrip () =
  let w = Msgbuf.W.create () in
  Msgbuf.W.u8 w 0xAB;
  Msgbuf.W.u64 w 123456789;
  Msgbuf.W.i64 w (-42L);
  Msgbuf.W.str w "hello";
  Msgbuf.W.bytes w (Bytes.of_string "\x00\x01\x02");
  let r = Msgbuf.R.of_bytes (Msgbuf.W.contents w) in
  check_int "u8" 0xAB (Msgbuf.R.u8 r);
  check_int "u64" 123456789 (Msgbuf.R.u64 r);
  Alcotest.(check int64) "i64" (-42L) (Msgbuf.R.i64 r);
  Alcotest.(check string) "str" "hello" (Msgbuf.R.str r);
  Alcotest.(check string) "bytes" "\x00\x01\x02"
    (Bytes.to_string (Msgbuf.R.bytes r));
  check_int "fully consumed" 0 (Msgbuf.R.remaining r)

let test_msgbuf_underflow () =
  let r = Msgbuf.R.of_bytes (Bytes.create 4) in
  check_bool "u64 from 4 bytes underflows" true
    (match Msgbuf.R.u64 r with
    | exception Msgbuf.R.Underflow -> true
    | _ -> false);
  (* A length prefix pointing past the end must not read garbage. *)
  let w = Msgbuf.W.create () in
  Msgbuf.W.u64 w 1000;
  let r = Msgbuf.R.of_bytes (Msgbuf.W.contents w) in
  check_bool "lying length underflows" true
    (match Msgbuf.R.str r with
    | exception Msgbuf.R.Underflow -> true
    | _ -> false)

let qcheck_msgbuf_roundtrip =
  QCheck.Test.make ~name:"msgbuf roundtrips arbitrary scripts" ~count:200
    QCheck.(list (pair (int_bound 2) (pair small_nat small_printable_string)))
    (fun script ->
      let w = Msgbuf.W.create () in
      List.iter
        (fun (tag, (n, s)) ->
          match tag with
          | 0 -> Msgbuf.W.u8 w n
          | 1 -> Msgbuf.W.u64 w n
          | _ -> Msgbuf.W.str w s)
        script;
      let r = Msgbuf.R.of_bytes (Msgbuf.W.contents w) in
      List.for_all
        (fun (tag, (n, s)) ->
          match tag with
          | 0 -> Msgbuf.R.u8 r = n land 0xff
          | 1 -> Msgbuf.R.u64 r = n
          | _ -> Msgbuf.R.str r = s)
        script)

(* --- kdata (capability tree, white box) --------------------------------- *)

let mem_obj n =
  Kdata.O_mem { mem_pe = 99; mem_addr = n * 100; mem_size = 100; mem_perm = Perm.rw }

let test_kdata_revoke_recursive () =
  let a = Kdata.make_vpe ~id:1 ~name:"a" ~pe:1 in
  let b = Kdata.make_vpe ~id:2 ~name:"b" ~pe:2 in
  let c = Kdata.make_vpe ~id:3 ~name:"c" ~pe:3 in
  let root = Result.get_ok (Kdata.insert a ~sel:10 (mem_obj 0) ~parent:None) in
  let to_b = Result.get_ok (Kdata.derive_to ~cap:root ~dst:b ~dst_sel:20 (mem_obj 0)) in
  let _to_c = Result.get_ok (Kdata.derive_to ~cap:to_b ~dst:c ~dst_sel:30 (mem_obj 0)) in
  let dropped = ref [] in
  Kdata.revoke root ~on_drop:(fun cap ->
      dropped := (cap.Kdata.c_owner.Kdata.v_id, cap.Kdata.c_sel) :: !dropped);
  (* Deepest first: c's copy, then b's, then the root. *)
  Alcotest.(check (list (pair int int)))
    "drop order deepest-first"
    [ (3, 30); (2, 20); (1, 10) ]
    (List.rev !dropped);
  check_int "a empty" 0 (Kdata.count_caps a);
  check_int "b empty" 0 (Kdata.count_caps b);
  check_int "c empty" 0 (Kdata.count_caps c)

let test_kdata_revoke_subtree_only () =
  let a = Kdata.make_vpe ~id:1 ~name:"a" ~pe:1 in
  let b = Kdata.make_vpe ~id:2 ~name:"b" ~pe:2 in
  let root = Result.get_ok (Kdata.insert a ~sel:1 (mem_obj 0) ~parent:None) in
  let child = Result.get_ok (Kdata.derive_to ~cap:root ~dst:b ~dst_sel:2 (mem_obj 0)) in
  let _grand = Result.get_ok (Kdata.derive_to ~cap:child ~dst:a ~dst_sel:3 (mem_obj 0)) in
  Kdata.revoke child ~on_drop:(fun _ -> ());
  check_bool "root survives" true (Result.is_ok (Kdata.get a ~sel:1));
  check_bool "grandchild gone" true (Result.is_error (Kdata.get a ~sel:3));
  check_bool "child gone" true (Result.is_error (Kdata.get b ~sel:2));
  check_int "root has no children" 0 (List.length root.Kdata.c_children)

let test_kdata_selector_collision () =
  let a = Kdata.make_vpe ~id:1 ~name:"a" ~pe:1 in
  ignore (Result.get_ok (Kdata.insert a ~sel:5 (mem_obj 1) ~parent:None));
  check_bool "duplicate selector rejected" true
    (match Kdata.insert a ~sel:5 (mem_obj 2) ~parent:None with
    | Error Errno.E_no_sel -> true
    | _ -> false)

let qcheck_kdata_revoke_root_empties_everything =
  QCheck.Test.make ~name:"revoking the root empties every table" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_bound 3) (int_bound 200)))
    (fun script ->
      let vpes = Array.init 4 (fun i -> Kdata.make_vpe ~id:i ~name:"v" ~pe:i) in
      let root =
        Result.get_ok (Kdata.insert vpes.(0) ~sel:1000 (mem_obj 0) ~parent:None)
      in
      let caps = ref [ root ] in
      List.iter
        (fun (v, sel) ->
          let parent = List.nth !caps (sel mod List.length !caps) in
          match Kdata.derive_to ~cap:parent ~dst:vpes.(v) ~dst_sel:sel (mem_obj sel) with
          | Ok cap -> caps := cap :: !caps
          | Error _ -> ())
        script;
      Kdata.revoke root ~on_drop:(fun _ -> ());
      Array.for_all (fun v -> Kdata.count_caps v = 0) vpes)

(* --- endpoint multiplexing ----------------------------------------------- *)

let test_epmux_eviction_round_robin () =
  run_app (fun _sys env ->
      (* 6 general EPs; create 9 memory gates and touch them all
         twice: every touch after the working set overflows must
         re-activate. *)
      let gates =
        List.init 9 (fun _ ->
            fst (ok (Gate.req_mem env ~size:4096 ~perm:Perm.rw)))
      in
      let buf = Env.alloc_spm env ~size:64 in
      let touch g = ok (Gate.read env g ~off:0 ~local:buf ~len:8) in
      let a0 = Epmux.activations env in
      List.iter touch gates;
      let after_first = Epmux.activations env - a0 in
      check_int "first pass activates all" 9 after_first;
      List.iter touch gates;
      let after_second = Epmux.activations env - a0 in
      (* With 9 gates on 6 endpoints and round-robin eviction, the
         second pass cannot all hit. *)
      check_bool "second pass re-activates some" true (after_second > 9);
      0)

let test_epmux_sticky_within_capacity () =
  run_app (fun _sys env ->
      let gates =
        List.init 3 (fun _ -> fst (ok (Gate.req_mem env ~size:4096 ~perm:Perm.rw)))
      in
      let buf = Env.alloc_spm env ~size:64 in
      let touch g = ok (Gate.read env g ~off:0 ~local:buf ~len:8) in
      List.iter touch gates;
      let a1 = Epmux.activations env in
      for _ = 1 to 5 do
        List.iter touch gates
      done;
      check_int "no re-activation within capacity" a1 (Epmux.activations env);
      0)

let test_recv_gates_exhaust_eps () =
  run_app (fun _sys env ->
      (* 6 general EPs; receive gates pin them permanently. *)
      for _ = 1 to 6 do
        ignore (ok (Gate.create_recv env ~slot_order:6 ~slot_count:1))
      done;
      check_bool "7th receive gate fails" true
        (match Gate.create_recv env ~slot_order:6 ~slot_count:1 with
        | exception Errno.Error Errno.E_no_ep -> true
        | Error Errno.E_no_ep -> true
        | _ -> false);
      0)

let test_spm_exhaustion () =
  run_app (fun _sys env ->
      (* The 64 KiB scratchpad bounds allocations. *)
      let ok_alloc = Env.alloc_spm env ~size:(48 * 1024) in
      check_bool "large alloc fits" true (ok_alloc > 0);
      check_bool "overflow rejected" true
        (match Env.alloc_spm env ~size:(32 * 1024) with
        | exception Errno.Error Errno.E_no_space -> true
        | _ -> false);
      0)

(* --- syscall / service error paths ----------------------------------------- *)

let test_bad_selectors () =
  run_app (fun _sys env ->
      check_bool "activate bad sel" true
        (Syscalls.activate env ~sel:9999 ~ep:3 = Error Errno.E_no_sel);
      check_bool "revoke bad sel" true
        (Syscalls.revoke env ~sel:9999 = Error Errno.E_no_sel);
      check_bool "wait on non-vpe cap" true
        (Syscalls.vpe_wait env ~vpe_sel:Env.sel_mem = Error Errno.E_inv_args);
      check_bool "activate own vpe cap" true
        (Syscalls.activate env ~sel:Env.sel_vpe ~ep:3 = Error Errno.E_inv_args);
      check_bool "activate reserved ep" true
        (Syscalls.activate env ~sel:Env.sel_mem ~ep:0 = Error Errno.E_inv_args);
      0)

let test_unknown_service_and_program () =
  run_app (fun _sys env ->
      check_bool "open_sess unknown service" true
        (Syscalls.open_sess env ~srv:"nope" ~arg:0 = Error Errno.E_not_found);
      let vpe =
        ok (M3.Vpe_api.create env ~name:"x" ~core:M3_hw.Core_type.General_purpose)
      in
      check_bool "start unknown program" true
        (Syscalls.vpe_start env ~vpe_sel:vpe.M3.Vpe_api.vpe_sel
           ~prog:"no-such-program" ~args:Bytes.empty
        = Error Errno.E_not_found);
      0)

let test_double_service_registration () =
  let engine = Engine.create () in
  let sys = Bootstrap.start ~no_fs:true engine in
  let register_one name =
    Bootstrap.launch sys ~name (fun env ->
        let kr = ok (Gate.create_recv env ~slot_order:8 ~slot_count:4) in
        let cr = ok (Gate.create_recv env ~slot_order:8 ~slot_count:4) in
        match
          Syscalls.create_srv env ~name:"dup" ~krgate_sel:kr.Gate.rg_sel
            ~crgate_sel:cr.Gate.rg_sel
        with
        | Ok _ -> 0
        | Error Errno.E_exists -> 42
        | Error _ -> 1)
  in
  let a = register_one "srv-a" in
  let b = register_one "srv-b" in
  ignore (Engine.run engine);
  let codes =
    List.sort compare
      [ Option.get (Process.Ivar.peek a); Option.get (Process.Ivar.peek b) ]
  in
  Alcotest.(check (list int)) "one wins, one E_exists" [ 0; 42 ] codes;
  (* The winner exited, which revoked its service capability — the
     registration dies with its owner. *)
  check_bool "service deregistered when owner exits" false
    (Kernel.service_registered sys.Bootstrap.kernel ~name:"dup")

let test_exchange_with_unrelated_vpe_fails () =
  run_app (fun _sys env ->
      (* Delegating via a selector that is a MEM cap, not a VPE cap. *)
      check_bool "exchange needs a vpe cap" true
        (Syscalls.delegate env ~vpe_sel:Env.sel_mem ~own_sel:Env.sel_mem
           ~other_sel:50
        = Error Errno.E_inv_args);
      0)

let test_args_reach_child () =
  run_app (fun _sys env ->
      let vpe =
        ok (M3.Vpe_api.create env ~name:"argv" ~core:M3_hw.Core_type.General_purpose)
      in
      ok
        (M3.Vpe_api.run env vpe
           ~args:(Bytes.of_string "payload-42")
           (fun cenv ->
             if Bytes.to_string cenv.Env.args = "payload-42" then 7 else 1));
      check_int "child saw the args" 7 (ok (M3.Vpe_api.wait env vpe));
      0)

let test_kernel_stats () =
  let engine = Engine.create () in
  let sys = Bootstrap.start ~no_fs:true engine in
  let exit =
    Bootstrap.launch sys ~name:"stats" (fun env ->
        for _ = 1 to 10 do
          ok (Syscalls.noop env)
        done;
        0)
  in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys exit;
  (* 10 noops + the exit syscall (plus nothing else on a bare system). *)
  check_int "syscalls counted" 11 (Kernel.syscalls_handled sys.Bootstrap.kernel)

let test_two_clients_share_m3fs () =
  (* Two applications with independent sessions write and cross-read
     files concurrently; the image stays consistent. *)
  let engine = Engine.create () in
  let sys = Bootstrap.start engine in
  let client k peer =
    Bootstrap.launch sys ~name:(Printf.sprintf "client%d" k) (fun env ->
        ok (M3.Vfs.mount_root env);
        let path = Printf.sprintf "/c%d.txt" k in
        let f =
          ok
            (M3.Vfs.open_ env path
               ~flags:(M3.Fs_proto.o_write lor M3.Fs_proto.o_create))
        in
        ok (M3.File.write_string env f (Printf.sprintf "written by %d" k));
        ok (M3.File.close env f);
        (* Wait for the peer's file to appear, then read it. *)
        let peer_path = Printf.sprintf "/c%d.txt" peer in
        let rec poll tries =
          if tries = 0 then Error Errno.E_not_found
          else
            match M3.Vfs.stat env peer_path with
            | Ok st when st.M3.Fs_proto.st_size > 0 -> Ok ()
            | Ok _ | Error Errno.E_not_found ->
              Process.wait 2000;
              poll (tries - 1)
            | Error e -> Error e
        in
        ok (poll 1000);
        let f = ok (M3.Vfs.open_ env peer_path ~flags:M3.Fs_proto.o_read) in
        let s = ok (M3.File.read_all env f ~max:100) in
        ok (M3.File.close env f);
        if s = Printf.sprintf "written by %d" peer then 0 else 1)
  in
  let a = client 1 2 and b = client 2 1 in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys a;
  Bootstrap.expect_exit sys b;
  match M3.M3fs.current_image engine with
  | None -> Alcotest.fail "no image"
  | Some fs -> (
    match M3.Fs_image.fsck fs with
    | Ok () -> ()
    | Error e -> Alcotest.failf "fsck: %s" e)

let test_program_registry () =
  Program.register ~name:"reg-test" ~image_bytes:1024 (fun _ -> 0);
  check_bool "find" true (Program.find "reg-test" <> None);
  check_bool "missing" true (Program.find "reg-missing" = None);
  let n1 = Program.register_lambda ~image_bytes:1 (fun _ -> 1) in
  let n2 = Program.register_lambda ~image_bytes:1 (fun _ -> 2) in
  check_bool "lambda names unique" true (n1 <> n2);
  Alcotest.(check (option string))
    "shebang roundtrip" (Some "reg-test")
    (Program.parse_shebang (Program.shebang "reg-test"));
  Alcotest.(check (option string)) "no shebang" None (Program.parse_shebang "ELF")

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "os2.msgbuf",
      [
        tc "scalar/string roundtrip" test_msgbuf_roundtrip;
        tc "underflow protection" test_msgbuf_underflow;
        QCheck_alcotest.to_alcotest qcheck_msgbuf_roundtrip;
      ] );
    ( "os2.captree",
      [
        tc "recursive revoke, deepest first" test_kdata_revoke_recursive;
        tc "subtree revoke leaves the rest" test_kdata_revoke_subtree_only;
        tc "selector collisions rejected" test_kdata_selector_collision;
        QCheck_alcotest.to_alcotest qcheck_kdata_revoke_root_empties_everything;
      ] );
    ( "os2.epmux",
      [
        tc "eviction under pressure" test_epmux_eviction_round_robin;
        tc "sticky within capacity" test_epmux_sticky_within_capacity;
        tc "receive gates exhaust endpoints" test_recv_gates_exhaust_eps;
        tc "SPM exhaustion" test_spm_exhaustion;
      ] );
    ( "os2.errors",
      [
        tc "bad selectors" test_bad_selectors;
        tc "unknown service and program" test_unknown_service_and_program;
        tc "double service registration" test_double_service_registration;
        tc "exchange needs a VPE cap" test_exchange_with_unrelated_vpe_fails;
        tc "args reach the child" test_args_reach_child;
        tc "two clients share m3fs" test_two_clients_share_m3fs;
        tc "kernel syscall counter" test_kernel_stats;
        tc "program registry" test_program_registry;
      ] );
  ]
