(* Tests for the discrete-event engine and the effect-based processes. *)

module Engine = M3_sim.Engine
module Process = M3_sim.Process
module Heap = M3_sim.Heap
module Rng = M3_sim.Rng
module Account = M3_sim.Account
module Stats = M3_sim.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- heap --- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k k) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iteri (fun i name -> Heap.push h ~key:7 (i, name)) [ "a"; "b"; "c" ];
  let order =
    List.init 3 (fun _ ->
        match Heap.pop h with Some (_, (_, n)) -> n | None -> "?")
  in
  Alcotest.(check (list string)) "FIFO among equal keys" [ "a"; "b"; "c" ] order

let test_heap_interleaved () =
  let h = Heap.create () in
  for i = 0 to 999 do
    Heap.push h ~key:(i * 7 mod 101) i
  done;
  let prev = ref (-1) in
  let ok = ref true in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (k, _) ->
      if k < !prev then ok := false;
      prev := k;
      drain ()
  in
  drain ();
  check_bool "monotone keys" true !ok;
  check_bool "empty at end" true (Heap.is_empty h)

(* --- engine --- *)

let test_engine_time_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~delay:10 (fun () -> seen := (10, Engine.now e) :: !seen);
  Engine.schedule e ~delay:5 (fun () -> seen := (5, Engine.now e) :: !seen);
  let final = Engine.run e in
  check_int "final time" 10 final;
  Alcotest.(check (list (pair int int)))
    "events in order with correct now" [ (5, 5); (10, 10) ] (List.rev !seen)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule e ~delay:1 (fun () ->
      Engine.schedule e ~delay:2 (fun () ->
          incr hits;
          check_int "nested time" 3 (Engine.now e)));
  ignore (Engine.run e);
  check_int "nested ran" 1 !hits

let test_engine_run_until () =
  let e = Engine.create () in
  let ran = ref [] in
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> ran := d :: !ran))
    [ 1; 5; 10 ];
  Engine.run_until e ~time:5;
  Alcotest.(check (list int)) "only up to 5" [ 5; 1 ] !ran;
  check_int "clock at boundary" 5 (Engine.now e);
  ignore (Engine.run e);
  Alcotest.(check (list int)) "rest ran" [ 10; 5; 1 ] !ran

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:3 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument
        "Engine.schedule_at: time 1 is in the past (now 3)")
        (fun () -> Engine.schedule_at e ~time:1 (fun () -> ())));
  ignore (Engine.run e)

(* --- processes --- *)

let test_process_wait () =
  let e = Engine.create () in
  let trace = ref [] in
  let _p =
    Process.spawn e ~name:"t" (fun () ->
        trace := ("start", Engine.now e) :: !trace;
        Process.wait 100;
        trace := ("mid", Engine.now e) :: !trace;
        Process.wait 50;
        trace := ("end", Engine.now e) :: !trace)
  in
  ignore (Engine.run e);
  Alcotest.(check (list (pair string int)))
    "timeline"
    [ ("start", 0); ("mid", 100); ("end", 150) ]
    (List.rev !trace)

let test_process_status () =
  let e = Engine.create () in
  let p = Process.spawn e ~name:"ok" (fun () -> Process.wait 1) in
  let q = Process.spawn e ~name:"boom" (fun () -> failwith "boom") in
  ignore (Engine.run e);
  check_bool "finished" true (Process.status p = Process.Finished);
  (match Process.status q with
  | Process.Failed (Failure m) -> Alcotest.(check string) "msg" "boom" m
  | _ -> Alcotest.fail "expected failure");
  ()

let test_process_ivar () =
  let e = Engine.create () in
  let iv = Process.Ivar.create () in
  let got = ref 0 and t_read = ref 0 in
  let _reader =
    Process.spawn e ~name:"reader" (fun () ->
        got := Process.Ivar.read iv;
        t_read := Engine.now e)
  in
  let _writer =
    Process.spawn e ~name:"writer" (fun () ->
        Process.wait 42;
        Process.Ivar.fill iv 7)
  in
  ignore (Engine.run e);
  check_int "value" 7 !got;
  check_int "woke at fill time" 42 !t_read

let test_process_ivar_read_after_fill () =
  let e = Engine.create () in
  let iv = Process.Ivar.create () in
  Process.Ivar.fill iv "x";
  let got = ref "" in
  let _p = Process.spawn e ~name:"r" (fun () -> got := Process.Ivar.read iv) in
  ignore (Engine.run e);
  Alcotest.(check string) "immediate" "x" !got;
  check_bool "is_filled" true (Process.Ivar.is_filled iv)

let test_process_waitq_fifo () =
  let e = Engine.create () in
  let q = Process.Waitq.create () in
  let woken = ref [] in
  for i = 1 to 3 do
    ignore
      (Process.spawn e
         ~name:(Printf.sprintf "w%d" i)
         (fun () ->
           Process.wait i;
           let v = Process.Waitq.park q in
           woken := (i, v) :: !woken))
  done;
  ignore
    (Process.spawn e ~name:"signaller" (fun () ->
         Process.wait 100;
         check_int "three waiters" 3 (Process.Waitq.waiters q);
         ignore (Process.Waitq.signal q "first");
         ignore (Process.Waitq.signal q "second");
         Process.Waitq.broadcast q "rest"));
  ignore (Engine.run e);
  Alcotest.(check (list (pair int string)))
    "wakeup order is FIFO"
    [ (1, "first"); (2, "second"); (3, "rest") ]
    (List.rev !woken)

let test_process_kill () =
  let e = Engine.create () in
  let reached = ref false in
  let p =
    Process.spawn e ~name:"victim" (fun () ->
        Process.wait 10;
        reached := true)
  in
  ignore (Process.spawn e ~name:"killer" (fun () ->
      Process.wait 5;
      Process.kill p));
  ignore (Engine.run e);
  check_bool "body after kill not reached" false !reached;
  check_bool "victim finished" true (Process.status p = Process.Finished)

let test_process_kill_while_parked () =
  let e = Engine.create () in
  let q = Process.Waitq.create () in
  let p = Process.spawn e ~name:"parked" (fun () -> Process.Waitq.park q) in
  ignore
    (Process.spawn e ~name:"killer" (fun () ->
         Process.wait 5;
         Process.kill p;
         (* The kill takes effect when the process next resumes. *)
         ignore (Process.Waitq.signal q ())));
  ignore (Engine.run e);
  check_bool "killed cleanly" true (Process.status p = Process.Finished)

let test_two_processes_interleave () =
  let e = Engine.create () in
  let log = ref [] in
  let mk name step =
    Process.spawn e ~name (fun () ->
        for i = 1 to 3 do
          Process.wait step;
          log := (name, i, Engine.now e) :: !log
        done)
  in
  ignore (mk "a" 10);
  ignore (mk "b" 15);
  ignore (Engine.run e);
  Alcotest.(check (list (triple string int int)))
    "deterministic interleaving"
    [
      (* At t = 30 both are due; "b" scheduled its event first (at
         t = 15 vs t = 20), so FIFO tie-breaking runs "b" first. *)
      ("a", 1, 10); ("b", 1, 15); ("a", 2, 20); ("b", 2, 30); ("a", 3, 30);
      ("b", 3, 45);
    ]
    (List.rev !log)

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17);
    let w = Rng.int_in r ~lo:5 ~hi:9 in
    check_bool "in closed range" true (w >= 5 && w <= 9);
    let f = Rng.float r in
    check_bool "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7 in
  let child = Rng.split parent in
  let xs = List.init 10 (fun _ -> Rng.bits64 parent) in
  let ys = List.init 10 (fun _ -> Rng.bits64 child) in
  check_bool "streams differ" true (xs <> ys)

let test_rng_fill_bytes () =
  let r = Rng.create ~seed:3 in
  let buf = Bytes.make 64 'z' in
  Rng.fill_bytes r buf ~pos:8 ~len:16;
  check_bool "prefix untouched" true
    (Bytes.sub_string buf 0 8 = String.make 8 'z');
  check_bool "suffix untouched" true
    (Bytes.sub_string buf 24 40 = String.make 40 'z');
  check_bool "middle randomized" true
    (Bytes.sub_string buf 8 16 <> String.make 16 'z')

(* --- account / stats --- *)

let test_account () =
  let a = Account.create () in
  Account.charge a Account.App 10;
  Account.charge a Account.Os 5;
  Account.charge a Account.Xfer 3;
  Account.charge a Account.App 1;
  check_int "app" 11 (Account.get a Account.App);
  check_int "total" 19 (Account.total a);
  let b = Account.create () in
  Account.charge b Account.Os 100;
  Account.add ~into:b a;
  check_int "merged" 119 (Account.total b);
  Account.reset a;
  check_int "reset" 0 (Account.total a)

let test_stats () =
  let s = Stats.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check_int "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max s)

let test_percentile () =
  let chk name expect got = Alcotest.(check (float 1e-9)) name expect got in
  (* 0 observations: every percentile is 0. *)
  let empty = Stats.create () in
  chk "empty p0" 0.0 (Stats.percentile empty 0.0);
  chk "empty p50" 0.0 (Stats.percentile empty 50.0);
  chk "empty p100" 0.0 (Stats.percentile empty 100.0);
  (* 1 observation: every percentile is that value. *)
  let one = Stats.of_list [ 42.0 ] in
  chk "one p0" 42.0 (Stats.percentile one 0.0);
  chk "one p50" 42.0 (Stats.percentile one 50.0);
  chk "one p99" 42.0 (Stats.percentile one 99.0);
  chk "one p100" 42.0 (Stats.percentile one 100.0);
  (* 2 observations: linear interpolation between them. *)
  let two = Stats.of_list [ 10.0; 20.0 ] in
  chk "two p0" 10.0 (Stats.percentile two 0.0);
  chk "two p25" 12.5 (Stats.percentile two 25.0);
  chk "two p50" 15.0 (Stats.percentile two 50.0);
  chk "two p100" 20.0 (Stats.percentile two 100.0);
  (* Insertion order must not matter, and out-of-range p is clamped. *)
  let s = Stats.of_list [ 9.0; 2.0; 5.0; 4.0; 7.0; 4.0; 5.0; 4.0 ] in
  chk "p0 = min" 2.0 (Stats.percentile s 0.0);
  chk "p100 = max" 9.0 (Stats.percentile s 100.0);
  chk "p50" 4.5 (Stats.percentile s 50.0);
  chk "clamp low" 2.0 (Stats.percentile s (-10.0));
  chk "clamp high" 9.0 (Stats.percentile s 1000.0);
  (* Adding after a query invalidates the cached order. *)
  Stats.add s 1.0;
  chk "after add, p0" 1.0 (Stats.percentile s 0.0);
  check_int "count grows" 9 (Stats.count s)

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap drains keys in sorted order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h ~key:k k) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

let qcheck_alloc_roundtrip =
  QCheck.Test.make ~name:"process wait sums delays" ~count:100
    QCheck.(list (int_bound 50))
    (fun delays ->
      let e = Engine.create () in
      let _p =
        Process.spawn e ~name:"q" (fun () -> List.iter Process.wait delays)
      in
      Engine.run e = List.fold_left ( + ) 0 delays)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "sim.heap",
      [
        tc "pops in key order" test_heap_order;
        tc "FIFO among equal keys" test_heap_fifo_ties;
        tc "interleaved push/pop stays monotone" test_heap_interleaved;
        QCheck_alcotest.to_alcotest qcheck_heap_sorts;
      ] );
    ( "sim.engine",
      [
        tc "time advances to event stamps" test_engine_time_advances;
        tc "nested scheduling" test_engine_nested_schedule;
        tc "run_until stops at boundary" test_engine_run_until;
        tc "rejects scheduling in the past" test_engine_rejects_past;
      ] );
    ( "sim.process",
      [
        tc "wait advances local time" test_process_wait;
        tc "status reflects completion and failure" test_process_status;
        tc "ivar blocks until filled" test_process_ivar;
        tc "ivar read after fill is immediate" test_process_ivar_read_after_fill;
        tc "waitq wakes FIFO" test_process_waitq_fifo;
        tc "kill takes effect at next wait" test_process_kill;
        tc "kill while parked" test_process_kill_while_parked;
        tc "two processes interleave deterministically"
          test_two_processes_interleave;
        QCheck_alcotest.to_alcotest qcheck_alloc_roundtrip;
      ] );
    ( "sim.rng",
      [
        tc "deterministic" test_rng_deterministic;
        tc "bounds respected" test_rng_bounds;
        tc "split gives independent stream" test_rng_split_independent;
        tc "fill_bytes stays in slice" test_rng_fill_bytes;
      ] );
    ( "sim.accounting",
      [
        tc "account arithmetic" test_account;
        tc "stats summary" test_stats;
        tc "stats percentiles" test_percentile;
      ]
    );
  ]
