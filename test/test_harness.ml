(* Shape tests of the reproduced experiments: the paper's qualitative
   claims must hold — who wins, by roughly what factor, where the
   crossovers are. These are the repository's "does it reproduce the
   paper" regression tests. *)

let check_bool = Alcotest.(check bool)

let ratio a b = float_of_int a /. float_of_int (max 1 b)

open M3_harness

(* --- Figure 3 --------------------------------------------------------- *)

let fig3 = lazy (Fig3.run ())

let test_fig3_syscall () =
  let t = Lazy.force fig3 in
  let m3 = t.Fig3.syscall.Fig3.m3.Runner.m_cycles in
  let lx = t.Fig3.syscall.Fig3.lx.Runner.m_cycles in
  check_bool (Printf.sprintf "M3 syscall ≈ 200 (got %d)" m3) true
    (m3 >= 170 && m3 <= 240);
  check_bool "Linux = 410" true (lx = 410);
  check_bool "M3 about half of Linux" true (ratio lx m3 > 1.7)

let test_fig3_ordering () =
  let t = Lazy.force fig3 in
  List.iter
    (fun (name, bars) ->
      let m3 = bars.Fig3.m3.Runner.m_cycles in
      let ideal = bars.Fig3.lx_ideal.Runner.m_cycles in
      let lx = bars.Fig3.lx.Runner.m_cycles in
      check_bool (name ^ ": M3 < Lx-$") true (m3 < ideal);
      check_bool (name ^ ": Lx-$ < Lx") true (ideal < lx))
    [ ("read", t.Fig3.read); ("write", t.Fig3.write); ("pipe", t.Fig3.pipe) ]

let test_fig3_magnitudes () =
  let t = Lazy.force fig3 in
  (* Reading 2 MiB at 8 B/cycle cannot beat 262144 cycles; M3 should be
     within 2x of that bound, Linux read ≈ 4–7x slower than M3. *)
  let m3_read = t.Fig3.read.Fig3.m3.Runner.m_cycles in
  check_bool "read above DTU bound" true (m3_read >= 2 * 1024 * 1024 / 8);
  check_bool "read within 2x of bound" true (m3_read < 2 * (2 * 1024 * 1024 / 8));
  let r = ratio t.Fig3.read.Fig3.lx.Runner.m_cycles m3_read in
  check_bool (Printf.sprintf "Linux read 3.5–8x slower (got %.1f)" r) true
    (r > 3.5 && r < 8.0);
  (* Write is worse for Linux than read (zeroing); pipe worst (double
     copy plus context switches). *)
  let wr = ratio t.Fig3.write.Fig3.lx.Runner.m_cycles t.Fig3.write.Fig3.m3.Runner.m_cycles in
  check_bool (Printf.sprintf "Linux write 5-12x slower (got %.1f)" wr) true
    (wr > 5.0 && wr < 12.0);
  check_bool "write ratio worse than read ratio" true (wr > r)

let test_fig3_m3_transfer_share () =
  (* On M3 the data transfers dominate the file ops — that is the
     whole point of the DTU (§5.4). *)
  let t = Lazy.force fig3 in
  List.iter
    (fun (name, bars) ->
      let m = bars.Fig3.m3 in
      check_bool (name ^ ": xfers are majority") true
        (m.Runner.m_xfer * 2 > m.Runner.m_cycles))
    [ ("read", t.Fig3.read); ("write", t.Fig3.write) ]

(* --- Figure 4 ------------------------------------------------------------ *)

let test_fig4_shape () =
  let points = Fig4.run () in
  let find bpe =
    List.find (fun p -> p.Fig4.blocks_per_extent = bpe) points
  in
  let r16 = (find 16).Fig4.read.Runner.m_cycles in
  let r256 = (find 256).Fig4.read.Runner.m_cycles in
  let r2048 = (find 2048).Fig4.read.Runner.m_cycles in
  check_bool "read cost falls with extent size" true (r16 > r256 && r256 > r2048);
  (* The sweet spot: beyond 256 the curve is nearly flat (§5.5). *)
  check_bool "steep before 256" true (r16 - r256 > 4 * (r256 - r2048));
  let w16 = (find 16).Fig4.write.Runner.m_cycles in
  let w256 = (find 256).Fig4.write.Runner.m_cycles in
  check_bool "write falls too" true (w16 > w256);
  (* Fragmentation hurts writes more than reads (allocation per extent). *)
  check_bool "write at 16 worse than read at 16" true (w16 > r16)

(* --- Figure 5 --------------------------------------------------------------- *)

let fig5 = lazy (Fig5.run ())

let row name =
  List.find (fun r -> r.Fig5.name = name) (Lazy.force fig5)

let test_fig5_cat_tr () =
  let r = row "cat+tr" in
  let ratio = ratio r.Fig5.m3.Runner.m_cycles r.Fig5.lx.Runner.m_cycles in
  (* paper: "about twice as fast" *)
  check_bool (Printf.sprintf "cat+tr M3 at 40-70%% of Linux (got %.2f)" ratio)
    true
    (ratio > 0.40 && ratio < 0.70)

let test_fig5_tar_untar () =
  List.iter
    (fun name ->
      let r = row name in
      let ratio = ratio r.Fig5.m3.Runner.m_cycles r.Fig5.lx.Runner.m_cycles in
      (* paper: 20% (tar) and 16% (untar) of Linux's time *)
      check_bool
        (Printf.sprintf "%s M3 at 10-35%% of Linux (got %.2f)" name ratio)
        true
        (ratio > 0.10 && ratio < 0.35))
    [ "tar"; "untar" ]

let test_fig5_find () =
  let r = row "find" in
  let ratio = ratio r.Fig5.m3.Runner.m_cycles r.Fig5.lx.Runner.m_cycles in
  (* paper: "Linux is slightly faster than M3" *)
  check_bool (Printf.sprintf "find M3 slightly slower (got %.2f)" ratio) true
    (ratio > 1.0 && ratio < 1.7)

let test_fig5_sqlite () =
  let r = row "sqlite" in
  let ratio = ratio r.Fig5.m3.Runner.m_cycles r.Fig5.lx.Runner.m_cycles in
  (* paper: "only slightly faster on M3 because computation dominates" *)
  check_bool (Printf.sprintf "sqlite within 10%% (got %.2f)" ratio) true
    (ratio > 0.85 && ratio <= 1.02);
  check_bool "compute dominates" true
    (r.Fig5.m3.Runner.m_app * 2 > r.Fig5.m3.Runner.m_cycles)

(* --- Figure 6 (reduced instance counts to keep the test quick) ---------------- *)

let test_fig6_shape () =
  let curves = Fig6.run ~counts:[ 1; 4; 8 ] () in
  let norm bench n =
    let c = List.find (fun c -> c.Fig6.bench = bench) curves in
    (List.find (fun p -> p.Fig6.instances = n) c.Fig6.points).Fig6.normalized
  in
  List.iter
    (fun bench ->
      check_bool (bench ^ " base is 1.0") true (abs_float (norm bench 1 -. 1.0) < 0.001);
      check_bool
        (Printf.sprintf "%s scales well to 4 (%.2f)" bench (norm bench 4))
        true
        (norm bench 4 < 1.45))
    [ "cat+tr"; "tar"; "untar"; "find"; "sqlite" ];
  (* find is the most service-bound benchmark and degrades first. *)
  check_bool "find degrades most at 8" true
    (norm "find" 8 > norm "tar" 8 && norm "find" 8 > norm "sqlite" 8);
  check_bool "sqlite nearly flat" true (norm "sqlite" 8 < 1.15)

(* --- Figure 7 -------------------------------------------------------------------- *)

let test_fig7_shape () =
  let t = Fig7.run () in
  let sw = t.Fig7.m3_software.Runner.m_cycles in
  let hw = t.Fig7.m3_accel.Runner.m_cycles in
  let lx = t.Fig7.linux.Runner.m_cycles in
  (* paper: "the accelerator has a huge performance benefit over the
     software version (about a factor of 30)" — end to end the chain
     includes transfers, so somewhat less. *)
  check_bool (Printf.sprintf "accel chain ≥ 10x faster (got %.1f)" (ratio sw hw))
    true
    (ratio sw hw > 10.0);
  check_bool "M3 software beats Linux" true (sw < lx);
  (* The FFT share itself speeds up ~30x. *)
  let fft_ratio =
    ratio t.Fig7.m3_software.Runner.m_app t.Fig7.m3_accel.Runner.m_app
  in
  check_bool (Printf.sprintf "FFT compute ~30x (got %.1f)" fft_ratio) true
    (fft_ratio > 10.0 && fft_ratio < 40.0);
  (* M3's OS overhead stays far below Linux's (exec, pipes, writes). *)
  check_bool "M3 os+xfer below Linux's" true
    (t.Fig7.m3_accel.Runner.m_os + t.Fig7.m3_accel.Runner.m_xfer
    < t.Fig7.linux.Runner.m_os + t.Fig7.linux.Runner.m_xfer)

(* --- A5: multiple service instances (§7 future work) --------------------- *)

let test_multi_instance_m3fs () =
  (* With 8 clients the single instance saturates (Fig. 6's find
     curve); a second instance roughly halves the queueing. *)
  let one = Ablations.service_instances_bench ~clients:8 ~instances:1 in
  let two = Ablations.service_instances_bench ~clients:8 ~instances:2 in
  check_bool
    (Printf.sprintf "2 instances at least 20%% faster (1: %d, 2: %d)" one two)
    true
    (two * 10 < one * 8)

(* --- Tables -------------------------------------------------------------------------- *)

let test_t1 () =
  let t = Tables.run_t1 () in
  check_bool "m3 total ≈ 200" true (t.Tables.m3_total >= 170 && t.Tables.m3_total <= 240);
  check_bool "transfer share ≈ 30" true (t.Tables.m3_xfer >= 10 && t.Tables.m3_xfer <= 45);
  check_bool "software share ≈ 170" true
    (t.Tables.m3_other >= 140 && t.Tables.m3_other <= 210);
  check_bool "linux 410" true (t.Tables.lx_total = 410)

let test_t2 () =
  let rows = Tables.run_t2 () in
  let get name = List.find (fun r -> r.Tables.arch = name) rows in
  let xtensa = get "xtensa" and arm = get "arm-a15" in
  check_bool "syscalls 410 vs 320" true
    (xtensa.Tables.syscall = 410 && arm.Tables.syscall = 320);
  let near target v = abs (v - target) < target / 5 in
  check_bool "xtensa create ovh ≈ 2.2 M" true
    (near 2_200_000 xtensa.Tables.create_overhead);
  check_bool "arm create ovh ≈ 2.4 M" true
    (near 2_400_000 arm.Tables.create_overhead);
  check_bool "copy ovh ≈ 3.2 M on both" true
    (near 3_200_000 xtensa.Tables.copy_overhead
    && near 3_200_000 arm.Tables.copy_overhead)

(* --- warm-cache cells (this PR's acceptance gates) -------------------- *)

let test_fig3_warm_read () =
  let t = Lazy.force fig3 in
  let w = t.Fig3.warm_read in
  check_bool
    (Printf.sprintf "cold pass hits the service (got %d round-trips)"
       w.Fig3.w_cold_rt)
    true (w.Fig3.w_cold_rt > 0);
  check_bool
    (Printf.sprintf "warm read >= 1.5x fewer round-trips (cold %d, warm %d)"
       w.Fig3.w_cold_rt w.Fig3.w_warm_rt)
    true (Fig3.warm_ok t);
  check_bool "warm read not slower than cold" true
    (w.Fig3.w_warm.Runner.m_cycles <= w.Fig3.w_cold.Runner.m_cycles)

let test_fig6x_warm_find () =
  let w = Fig6x.warm_find () in
  check_bool
    (Printf.sprintf "warm find >= 1.5x fewer round-trips (cold %d, warm %d)"
       w.Fig6x.wf_cold_rt w.Fig6x.wf_warm_rt)
    true (Fig6x.warm_find_ok w);
  check_bool "warm run sees cache hits" true (w.Fig6x.wf_hit_rate > 0.0)

let tc name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let suites =
  [
    ( "repro.fig3",
      [
        tc "syscall 200 vs 410" test_fig3_syscall;
        tc "M3 < Lx-$ < Lx everywhere" test_fig3_ordering;
        tc "magnitudes and ratios" test_fig3_magnitudes;
        tc "transfers dominate on M3" test_fig3_m3_transfer_share;
      ] );
    ("repro.fig4", [ tc "fragmentation curve shape" test_fig4_shape ]);
    ( "repro.fig5",
      [
        tc "cat+tr ≈ 2x" test_fig5_cat_tr;
        tc "tar/untar ≈ 5x" test_fig5_tar_untar;
        tc "find slightly slower" test_fig5_find;
        tc "sqlite compute-bound" test_fig5_sqlite;
      ] );
    ("repro.fig6", [ slow "scalability shape" test_fig6_shape ]);
    ("repro.fig7", [ tc "accelerator chain" test_fig7_shape ]);
    ( "repro.extensions",
      [ tc "multiple m3fs instances scale" test_multi_instance_m3fs ] );
    ( "repro.warmcache",
      [
        tc "fig3 warm read: >= 1.5x fewer round-trips" test_fig3_warm_read;
        tc "fig6x warm find: >= 1.5x fewer round-trips" test_fig6x_warm_find;
      ] );
    ( "repro.tables",
      [ tc "T1 syscall decomposition" test_t1; tc "T2 Xtensa vs ARM" test_t2 ]
    );
  ]
