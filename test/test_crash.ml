(* Crash containment: the kernel-level abort path and its guarantees.

   - the crash matrix (harness sweep, quick points): for every role a
     PE crash is detected by the heartbeat prober, the victim aborted
     with full capability/endpoint reclamation, survivors observe
     E_vpe_dead / E_pipe_broken, the PE is quarantined, a supervised
     restart recovers, and the simulation drains;
   - exit vs. abort is idempotent: whichever death arrives first sets
     the cause and exit code, later kills only bump [kills_ignored];
   - create_rgate's endpoint activation is undone by revoke (the
     ep_caps binding used to leak). *)

module Engine = M3_sim.Engine
module Process = M3_sim.Process
module Core_type = M3_hw.Core_type
module Bootstrap = M3.Bootstrap
module Kernel = M3.Kernel
module Kdata = M3.Kdata
module Gate = M3.Gate
module Syscalls = M3.Syscalls
module Vpe_api = M3.Vpe_api
module Errno = M3.Errno
module Crash = M3_harness.Crash

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_os = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected OS error: %s" (Errno.to_string e)

(* --- the crash matrix, one quick cell per role ------------------------ *)

let test_matrix role () =
  let sweep = Crash.run ~quick:true role in
  List.iter
    (fun c ->
      if c.Crash.c_failures <> [] then
        Alcotest.failf "%s, crash at command %d: %s" role c.Crash.c_after
          (String.concat "; " c.Crash.c_failures))
    sweep.Crash.r_cells

(* --- exit vs. abort idempotence --------------------------------------- *)

(* Runs [main] against a fresh no-fs system and returns what the kernel
   recorded. [main] gets the kernel handle too, for white-box pokes. *)
let with_system main =
  let engine = Engine.create () in
  let sys = Bootstrap.start ~no_fs:true engine in
  let exit = Bootstrap.launch sys ~name:"main" (main sys) in
  ignore (Engine.run engine);
  (sys, Option.value ~default:min_int (Process.Ivar.peek exit))

let long_worker cenv =
  for _ = 1 to 200 do
    ok_os (Syscalls.noop cenv)
  done;
  0

let test_abort_then_revoke () =
  let victim_id = ref 0 in
  let sys, code =
    with_system (fun sys env ->
        let t =
          ok_os (Vpe_api.create env ~name:"victim" ~core:Core_type.General_purpose)
        in
        victim_id := t.Vpe_api.vpe_id;
        ok_os (Vpe_api.run env t long_worker);
        let v = Option.get (Kernel.find_vpe sys.Bootstrap.kernel ~vpe_id:t.Vpe_api.vpe_id) in
        Kernel.abort sys.Bootstrap.kernel v ~reason:"test";
        let died =
          match Vpe_api.wait env t with
          | Error Errno.E_vpe_dead -> true
          | _ -> false
        in
        (* The parent dropping the VPE capability is a second kill —
           it must lose the race quietly. *)
        ok_os (Syscalls.revoke env ~sel:t.Vpe_api.vpe_sel);
        ok_os (Syscalls.revoke env ~sel:t.Vpe_api.mem_sel);
        if died then 0 else 1)
  in
  check_int "main saw E_vpe_dead and finished" 0 code;
  let k = sys.Bootstrap.kernel in
  let v = Option.get (Kernel.find_vpe k ~vpe_id:!victim_id) in
  check_bool "first cause (the abort) sticks" true
    (match v.Kdata.v_cause with Some (Kdata.C_abort "test") -> true | _ -> false);
  check_int "exit code is the abort code" Kernel.abort_exit_code
    (Option.value ~default:min_int v.Kdata.v_exit_code);
  check_int "the losing kill was counted, not applied" 1 (Kernel.kills_ignored k);
  check_int "no capability survived" 0 (Kdata.count_caps v);
  check_int "no endpoint binding survived" 0 (Kernel.ep_entries k ~vpe_id:!victim_id);
  (* A test abort of a healthy PE must not quarantine the hardware. *)
  check_bool "live PE not quarantined" false
    (M3_hw.Platform.is_quarantined sys.Bootstrap.platform v.Kdata.v_pe)

let test_exit_then_revoke () =
  let victim_id = ref 0 in
  let sys, code =
    with_system (fun _sys env ->
        let t =
          ok_os (Vpe_api.create env ~name:"victim" ~core:Core_type.General_purpose)
        in
        victim_id := t.Vpe_api.vpe_id;
        ok_os (Vpe_api.run env t (fun _ -> 7));
        let got = Vpe_api.wait env t in
        ok_os (Syscalls.revoke env ~sel:t.Vpe_api.vpe_sel);
        if got = Ok 7 then 0 else 1)
  in
  check_int "main saw the voluntary code and finished" 0 code;
  let k = sys.Bootstrap.kernel in
  let v = Option.get (Kernel.find_vpe k ~vpe_id:!victim_id) in
  check_bool "first cause (the exit) sticks" true
    (v.Kdata.v_cause = Some (Kdata.C_exit 7));
  check_int "exit code untouched by the revoke" 7
    (Option.value ~default:min_int v.Kdata.v_exit_code);
  check_int "the revoke's kill was counted, not applied" 1 (Kernel.kills_ignored k)

(* --- create_rgate activation is undone by revoke ----------------------- *)

let test_rgate_revoke_reclaims_ep () =
  let before = ref (-1) and during = ref (-1) in
  let after = ref (-1) and again = ref (-1) in
  let sys, code =
    with_system (fun sys env ->
        let k = sys.Bootstrap.kernel in
        let entries () = Kernel.ep_entries k ~vpe_id:1 in
        before := entries ();
        let g = ok_os (Gate.create_recv env ~slot_order:8 ~slot_count:4) in
        during := entries ();
        ok_os (Syscalls.revoke env ~sel:g.Gate.rg_sel);
        after := entries ();
        (* A second gate must not stack a stale binding on top. *)
        let g2 = ok_os (Gate.create_recv env ~slot_order:8 ~slot_count:4) in
        again := entries ();
        ok_os (Syscalls.revoke env ~sel:g2.Gate.rg_sel);
        0)
  in
  ignore sys;
  check_int "main finished" 0 code;
  check_int "activation recorded one binding" (!before + 1) !during;
  check_int "revoke reclaimed it" !before !after;
  check_int "re-activation holds exactly one again" (!before + 1) !again

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "crash.matrix",
      List.map
        (fun role -> tc (role ^ " cell: detect, contain, restart") (test_matrix role))
        Crash.names );
    ( "crash.idempotence",
      [
        tc "abort first, revoke second" test_abort_then_revoke;
        tc "exit first, revoke second" test_exit_then_revoke;
      ] );
    ( "crash.reclaim",
      [ tc "rgate revoke frees the endpoint binding" test_rgate_revoke_reclaims_ep ] );
  ]
