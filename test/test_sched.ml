(* Kernel VPE scheduler: correctness gates for suspend/resume.

   - round trip: a stateful child suspended and resumed mid-protocol
     produces the exact reply bytes and exit code of an uninterrupted
     run — migration is invisible except as latency;
   - determinism: two identical suspended runs are byte-identical at
     the event-log level (the repo's established seeded-log style);
   - zero cost when off: merely constructing scheduler values costs
     zero simulated cycles (a scheduler-less run is byte-identical
     whether or not host code builds a [Sched.t] on the side), and a
     kernel booted WITH a scheduler that no one uses changes no
     behavior — same replies, same exit, zero captures and switches;
   - reclamation: suspend/resume leaks no capabilities or endpoint
     bookkeeping, and a crash-abort of a VPE parked off its PE still
     tears everything down. *)

module Engine = M3_sim.Engine
module Process = M3_sim.Process
module Endpoint = M3_dtu.Endpoint
module Obs = M3_obs.Obs
module Bootstrap = M3.Bootstrap
module Kernel = M3.Kernel
module Kdata = M3.Kdata
module Gate = M3.Gate
module Syscalls = M3.Syscalls
module Vpe_api = M3.Vpe_api
module Errno = M3.Errno
module Sched = M3_sched.Sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let ok = Errno.ok_exn

(* --- the scenario ------------------------------------------------------ *)

(* A child that folds every request byte into an accumulator and
   replies with the running value: any lost, duplicated or corrupted
   state across a migration changes every subsequent reply. *)

let child_sel = 3000
let rounds = 16
let sentinel = 255

let child_body (cenv : M3.Env.t) =
  let rgate = ok (Gate.create_recv cenv ~slot_order:6 ~slot_count:8) in
  let _pub =
    ok
      (Gate.create_send ~sel:child_sel cenv rgate ~label:7L
         ~credits:(Endpoint.Credits 2))
  in
  let acc = ref 1 in
  let rec loop () =
    let msg = Gate.recv cenv rgate in
    let x = Bytes.get_uint8 msg.Endpoint.payload 0 in
    if x = sentinel then begin
      ignore (Gate.reply cenv rgate ~slot:msg.Endpoint.slot (Bytes.create 1));
      !acc land 0x3f
    end
    else begin
      acc := ((!acc * 31) + x) land 0xffffff;
      let b = Bytes.create 3 in
      Bytes.set_uint8 b 0 (!acc land 0xff);
      Bytes.set_uint8 b 1 ((!acc lsr 8) land 0xff);
      Bytes.set_uint8 b 2 ((!acc lsr 16) land 0xff);
      ok (Gate.reply cenv rgate ~slot:msg.Endpoint.slot b);
      loop ()
    end
  in
  loop ()

let obtain_with_retry env ~vpe_sel ~own_sel ~other_sel =
  let rec go tries =
    match Syscalls.obtain env ~vpe_sel ~own_sel ~other_sel with
    | Ok () -> Ok ()
    | Error Errno.E_no_sel when tries > 0 ->
      Process.wait 500;
      go (tries - 1)
    | Error e -> Error e
  in
  go 20_000

type outcome = {
  o_replies : string;  (** hex of every reply payload, in order *)
  o_exit : int;
  o_log : string;  (** the full event log *)
  o_final : int;  (** final engine cycle *)
  o_suspends : int;  (** scheduler counter *)
  o_resumes : int;
  o_child_caps : int;  (** child capabilities left after its exit *)
  o_child_eps : int;  (** child endpoint bookkeeping left after exit *)
  o_parked_mid : int;  (** [suspended_count] observed while parked *)
  o_susp_after : int;  (** [suspended_count] once everyone exited *)
  o_free_pes : int;  (** free PEs once everyone exited *)
}

(* [run_scenario ~with_sched ~suspend_mid ()] drives the child through
   [rounds] request/reply rounds; with [suspend_mid] it parks the
   child off its PE after half of them and resumes it before going
   on. *)
let run_scenario ~with_sched ~suspend_mid () =
  let engine = Engine.create () in
  let mem = Obs.Memory.create () in
  let obs = Obs.of_engine engine in
  Obs.attach obs (Obs.Memory.sink mem);
  let sched = if with_sched then Some (Sched.create ()) else None in
  let sys = Bootstrap.start ~no_fs:true ~obs ?sched engine in
  let k = sys.Bootstrap.kernel in
  let buf = Buffer.create 128 in
  let parked_mid = ref (-1) in
  let child_exit = ref min_int in
  let child_caps = ref (-1) and child_eps = ref (-1) in
  let exit =
    Bootstrap.launch sys ~name:"parent" (fun env ->
        let child =
          ok
            (Vpe_api.create env ~name:"child"
               ~core:M3_hw.Core_type.General_purpose)
        in
        ok (Vpe_api.run env child child_body);
        let sel = M3.Env.alloc_sel env in
        ok
          (obtain_with_retry env ~vpe_sel:child.Vpe_api.vpe_sel ~own_sel:sel
             ~other_sel:child_sel);
        let sg = Gate.send_gate_of_sel sel in
        let rg = ok (Gate.create_recv env ~slot_order:6 ~slot_count:8) in
        let round x =
          let b = Bytes.create 1 in
          Bytes.set_uint8 b 0 x;
          ok (Gate.send env sg b ~reply:(rg, 9L) ());
          let reply = Gate.recv env rg in
          Bytes.iter
            (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
            reply.Endpoint.payload;
          Gate.ack env rg ~slot:reply.Endpoint.slot
        in
        for i = 1 to rounds / 2 do
          round i
        done;
        if suspend_mid then begin
          ok (Vpe_api.suspend env child);
          ok (Vpe_api.await_parked env child ());
          parked_mid := Kernel.suspended_count k;
          ok (Vpe_api.resume env child)
        end;
        for i = (rounds / 2) + 1 to rounds do
          round i
        done;
        round sentinel;
        child_exit := ok (Vpe_api.wait env child);
        (match Kernel.find_vpe k ~vpe_id:child.Vpe_api.vpe_id with
        | Some v ->
          child_caps := Kdata.count_caps v;
          child_eps := Kernel.ep_entries k ~vpe_id:child.Vpe_api.vpe_id
        | None -> ());
        0)
  in
  let final = Engine.run engine in
  Bootstrap.expect_exit sys exit;
  ignore (Process.Ivar.peek exit);
  {
    o_replies = Buffer.contents buf;
    o_exit = !child_exit;
    o_log = Obs.Memory.to_string mem;
    o_final = final;
    o_suspends =
      (match Kernel.sched k with Some s -> Sched.suspends s | None -> 0);
    o_resumes =
      (match Kernel.sched k with Some s -> Sched.resumes s | None -> 0);
    o_child_caps = !child_caps;
    o_child_eps = !child_eps;
    o_parked_mid = !parked_mid;
    o_susp_after = Kernel.suspended_count k;
    o_free_pes = Kernel.free_pes k;
  }

(* --- round trip -------------------------------------------------------- *)

let test_round_trip_is_bit_identical () =
  let plain = run_scenario ~with_sched:true ~suspend_mid:false () in
  let susp = run_scenario ~with_sched:true ~suspend_mid:true () in
  check_bool "replies not empty" true (String.length plain.o_replies > 0);
  check_string "identical reply bytes across the migration" plain.o_replies
    susp.o_replies;
  check_int "identical exit code" plain.o_exit susp.o_exit;
  check_int "one capture" 1 susp.o_suspends;
  check_int "one restore" 1 susp.o_resumes;
  check_int "child was parked off its PE" 1 susp.o_parked_mid

let test_suspended_run_is_deterministic () =
  let a = run_scenario ~with_sched:true ~suspend_mid:true () in
  let b = run_scenario ~with_sched:true ~suspend_mid:true () in
  check_bool "log not empty" true (String.length a.o_log > 0);
  check_string "byte-identical event logs" a.o_log b.o_log;
  check_int "identical final cycle" a.o_final b.o_final

(* --- zero cost when off ------------------------------------------------ *)

(* The strong half: a scheduler-less run must be byte-identical to
   today's logs — holding scheduler values host-side must not perturb
   the simulation at all. *)
let test_no_scheduler_is_byte_identical () =
  let plain = run_scenario ~with_sched:false ~suspend_mid:false () in
  (* Same run, but with a scheduler constructed and poked on the host
     side — never handed to the kernel. *)
  let s = Sched.create () in
  check_int "fresh scheduler counted nothing" 0 (Sched.suspends s);
  let with_values = run_scenario ~with_sched:false ~suspend_mid:false () in
  check_int "still counted nothing" 0 (Sched.switches s);
  check_bool "log not empty" true (String.length plain.o_log > 0);
  check_string "byte-identical event logs" plain.o_log with_values.o_log;
  check_int "identical final cycle" plain.o_final with_values.o_final

(* The behavioral half: a kernel booted with a scheduler that nobody
   asks to suspend anything must not schedule — same replies, same
   exit, zero captures, zero switches. (The logs are allowed to
   differ: placement defensively wipes the DTU suspended flag when a
   scheduler is attached, which is itself a visible ext command.) *)
let test_unused_scheduler_changes_nothing () =
  let off = run_scenario ~with_sched:false ~suspend_mid:false () in
  let on_ = run_scenario ~with_sched:true ~suspend_mid:false () in
  check_string "identical replies" off.o_replies on_.o_replies;
  check_int "identical exit code" off.o_exit on_.o_exit;
  check_int "zero captures" 0 on_.o_suspends;
  check_int "zero restores" 0 on_.o_resumes

(* --- reclamation ------------------------------------------------------- *)

let test_suspend_resume_leaks_nothing () =
  let plain = run_scenario ~with_sched:true ~suspend_mid:false () in
  let susp = run_scenario ~with_sched:true ~suspend_mid:true () in
  check_int "no capability survived the child" 0 susp.o_child_caps;
  check_int "no endpoint binding survived the child" 0 susp.o_child_eps;
  check_int "no parked image survived" 0 susp.o_susp_after;
  check_int "free PEs match the uninterrupted run" plain.o_free_pes
    susp.o_free_pes

(* Crash-abort of a VPE that is parked off its PE: the kernel holds
   its only copy (image + stashed memory caps); the abort must discard
   all of it and release everything the VPE owned. *)
let test_abort_of_suspended_vpe () =
  let engine = Engine.create () in
  let sched = Sched.create () in
  let sys = Bootstrap.start ~no_fs:true ~sched engine in
  let k = sys.Bootstrap.kernel in
  let child_id = ref (-1) in
  let waited = ref None in
  let exit =
    Bootstrap.launch sys ~name:"parent" (fun env ->
        let child =
          ok
            (Vpe_api.create env ~name:"victim"
               ~core:M3_hw.Core_type.General_purpose)
        in
        child_id := child.Vpe_api.vpe_id;
        ok (Vpe_api.run env child child_body);
        let sel = M3.Env.alloc_sel env in
        ok
          (obtain_with_retry env ~vpe_sel:child.Vpe_api.vpe_sel ~own_sel:sel
             ~other_sel:child_sel);
        ok (Vpe_api.suspend env child);
        ok (Vpe_api.await_parked env child ());
        check_int "image parked" 1 (Kernel.suspended_count k);
        let v = Option.get (Kernel.find_vpe k ~vpe_id:child.Vpe_api.vpe_id) in
        Kernel.abort k v ~reason:"test";
        waited := Some (Vpe_api.wait env child);
        0)
  in
  ignore (Engine.run engine);
  Bootstrap.expect_exit sys exit;
  (match !waited with
  | Some (Error Errno.E_vpe_dead) -> ()
  | Some (Ok code) ->
    check_int "abort exit code surfaced" Kernel.abort_exit_code code
  | Some (Error e) ->
    Alcotest.failf "unexpected wait result: %s" (Errno.to_string e)
  | None -> Alcotest.fail "parent never waited");
  check_int "no parked image survived the abort" 0 (Kernel.suspended_count k);
  let v = Option.get (Kernel.find_vpe k ~vpe_id:!child_id) in
  check_bool "victim is dead" true (v.Kdata.v_state = Kdata.V_dead);
  check_int "no capability survived" 0 (Kdata.count_caps v);
  check_int "no endpoint binding survived" 0
    (Kernel.ep_entries k ~vpe_id:!child_id)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "sched.roundtrip",
      [
        tc "suspend/resume is bit-identical" test_round_trip_is_bit_identical;
        tc "suspended run is deterministic" test_suspended_run_is_deterministic;
      ] );
    ( "sched.off",
      [
        tc "no-scheduler run is byte-identical"
          test_no_scheduler_is_byte_identical;
        tc "unused scheduler changes nothing"
          test_unused_scheduler_changes_nothing;
      ] );
    ( "sched.reclaim",
      [
        tc "suspend/resume leaks nothing" test_suspend_resume_leaks_nothing;
        tc "abort of a parked VPE tears down" test_abort_of_suspended_vpe;
      ] );
  ]
