(* Observability: tracing must be deterministic, must not perturb the
   simulation, and the Chrome exporter must produce well-formed JSON
   whose counters agree with the cycle accounting. *)

module Engine = M3_sim.Engine
module Obs = M3_obs.Obs
module Event = M3_obs.Event
module Chrome = M3_obs.Chrome
module Metrics = M3_obs.Metrics
module Runner = M3_harness.Runner

let tc name f = Alcotest.test_case name `Quick f

(* Installs the harness observer hook for the duration of [f]. *)
let with_observer attach f =
  Runner.observer := Some attach;
  Fun.protect ~finally:(fun () -> Runner.observer := None) f

(* --- determinism ------------------------------------------------------- *)

let record_fig3 () =
  let mem = Obs.Memory.create () in
  with_observer
    (fun o -> Obs.attach o (Obs.Memory.sink mem))
    (fun () -> ignore (M3_harness.Fig3.run ()));
  mem

let test_determinism () =
  let a = record_fig3 () in
  let b = record_fig3 () in
  Alcotest.(check bool)
    "fig3 produces a substantial event stream" true
    (Obs.Memory.count a > 1000);
  Alcotest.(check int) "same event count" (Obs.Memory.count a)
    (Obs.Memory.count b);
  Alcotest.(check bool)
    "event streams byte-identical across runs" true
    (String.equal (Obs.Memory.to_string a) (Obs.Memory.to_string b))

(* --- tracing does not perturb the simulation --------------------------- *)

let test_no_perturbation () =
  let base = M3_harness.Fig5.run_cat_tr_m3 () in
  let mem = Obs.Memory.create () in
  let traced =
    with_observer
      (fun o -> Obs.attach o (Obs.Memory.sink mem))
      (fun () -> M3_harness.Fig5.run_cat_tr_m3 ())
  in
  Alcotest.(check bool) "events recorded" true (Obs.Memory.count mem > 0);
  Alcotest.(check int) "cycles identical" base.Runner.m_cycles
    traced.Runner.m_cycles;
  Alcotest.(check int) "app identical" base.Runner.m_app traced.Runner.m_app;
  Alcotest.(check int) "os identical" base.Runner.m_os traced.Runner.m_os;
  Alcotest.(check int) "xfer identical" base.Runner.m_xfer traced.Runner.m_xfer

(* --- Chrome trace JSON ------------------------------------------------- *)

(* Minimal JSON validator (no JSON library in the tree): accepts
   exactly the RFC 8259 grammar, returns false on any malformation. *)
let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let exception Bad in
  let peek () = if !pos >= n then '\000' else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () <> c then raise Bad else advance () in
  let lit w = String.iter (fun c -> if peek () <> c then raise Bad else advance ()) w in
  let digits () =
    let had = ref false in
    while match peek () with '0' .. '9' -> true | _ -> false do
      had := true;
      advance ()
    done;
    if not !had then raise Bad
  in
  let jstring () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' ->
          advance ();
          go ()
        | 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
            | _ -> raise Bad
          done;
          go ()
        | _ -> raise Bad)
      | '\000' -> raise Bad
      | _ ->
        advance ();
        go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> jstring ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' ->
      if peek () = '-' then advance ();
      digits ();
      if peek () = '.' then begin
        advance ();
        digits ()
      end;
      (match peek () with
      | 'e' | 'E' ->
        advance ();
        (match peek () with '+' | '-' -> advance () | _ -> ());
        digits ()
      | _ -> ())
    | _ -> raise Bad
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        jstring ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
          advance ();
          members ()
        | '}' -> advance ()
        | _ -> raise Bad
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec items () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
          advance ();
          items ()
        | ']' -> advance ()
        | _ -> raise Bad
      in
      items ()
  in
  match
    value ();
    skip_ws ()
  with
  | () -> !pos = n
  | exception Bad -> false

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_chrome_json () =
  let chrome = Chrome.create () in
  ignore
    (with_observer
       (fun o ->
         Chrome.begin_run chrome;
         Obs.attach o (Chrome.sink chrome))
       (fun () -> M3_harness.Fig5.run_cat_tr_m3 ()));
  let json = Chrome.to_string chrome in
  Alcotest.(check bool) "well-formed JSON" true (json_well_formed json);
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "trace contains %s" needle)
        true
        (contains ~needle json))
    [
      "\"traceEvents\"";
      "\"cat\":\"dtu\"";
      "\"cat\":\"noc\"";
      "\"cat\":\"syscall\"";
      "\"cat\":\"pipe\"";
      "\"ph\":\"s\"" (* flow start... *);
      "\"ph\":\"f\"" (* ...and finish: arrows are present *);
      "\"ph\":\"M\"" (* process/thread metadata *);
    ]

(* --- counters agree with the cycle accounting --------------------------- *)

(* One uncontended null syscall: the Xfer charge is derived from the
   fabric's pure latency, and with nothing else on the NoC the traced
   request + reply transfers must cover exactly those cycles. *)
let test_counter_consistency () =
  let mem = Obs.Memory.create () in
  let metrics = Metrics.create () in
  let t0 = ref 0 and t1 = ref 0 in
  let m =
    with_observer
      (fun o ->
        Obs.attach o (Obs.Memory.sink mem);
        Obs.attach o (Metrics.sink metrics))
      (fun () ->
        Runner.run_m3 ~pe_count:4 ~dram_mib:4 ~no_fs:true
          (fun env ~measured ->
            t0 := Engine.now env.M3.Env.engine;
            measured (fun () -> M3.Errno.ok_exn (M3.Syscalls.noop env));
            t1 := Engine.now env.M3.Env.engine))
  in
  let in_window = ref 0 and traced_xfer = ref 0 in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Event.Noc_xfer { depart; arrive; _ }
        when depart >= !t0 && arrive <= !t1 ->
        incr in_window;
        traced_xfer := !traced_xfer + (arrive - depart)
      | _ -> ())
    (Obs.Memory.events mem);
  Alcotest.(check int) "request + reply crossings" 2 !in_window;
  Alcotest.(check int) "Xfer charge equals traced NoC occupancy"
    m.Runner.m_xfer !traced_xfer;
  (* The metrics sink saw the same syscall. *)
  Alcotest.(check bool)
    "metrics recorded the noop" true
    (List.mem_assoc "noop" (Metrics.syscalls metrics))

let suites =
  [
    ( "obs",
      [
        tc "deterministic event stream (fig3 twice)" test_determinism;
        tc "tracing does not perturb cycle counts" test_no_perturbation;
        tc "chrome trace is well-formed JSON with flows" test_chrome_json;
        tc "traced transfers match Xfer accounting" test_counter_consistency;
      ] );
  ]
