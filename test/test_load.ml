(* Regression tests for the non-Poisson load models:

   - every model ([mmpp], [diurnal], [flash], [think_times]) is a pure
     function of its Rng: same seed, same schedule, cycle for cycle,
   - the models honor the draw-order convention: attaching a client
     picker never perturbs arrival times, and [flash]'s base stream is
     byte-identical to plain [poisson] from the same seed — the crowd
     is a pure extension of the draw stream,
   - the shapes are real: mmpp's burst phase packs arrivals tighter
     than its calm phase, the flash crowd lands inside its window with
     fresh identities, and think times respect their floor,
   - bad arguments are refused up front. *)

module Rng = M3_sim.Rng
module Load = M3_serve.Load
module Wire = M3_serve.Wire

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mix = Load.pure (Wire.Echo 1_000)

let same_schedule name a b =
  check_int (name ^ ": same length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (x : Load.arrival) ->
      let y = b.(i) in
      check_int (name ^ ": same arrival time") x.Load.at y.Load.at;
      check_int (name ^ ": same client") x.Load.client y.Load.client;
      check_bool (name ^ ": same request") true (x.Load.req = y.Load.req))
    a

(* --- mmpp ---------------------------------------------------------------- *)

let mmpp ?clients ~seed () =
  Load.mmpp ?clients ~rng:(Rng.create ~seed) ~calm_gap:2_000.0 ~burst_gap:200.0
    ~p_burst:0.1 ~p_calm:0.3 ~count:300 ~mix ()

let test_mmpp_deterministic () =
  same_schedule "mmpp" (mmpp ~seed:41 ()) (mmpp ~seed:41 ())

let test_mmpp_bursts () =
  let s = mmpp ~seed:42 () in
  let gaps =
    Array.init (Array.length s - 1) (fun i -> s.(i + 1).Load.at - s.(i).Load.at)
  in
  Array.sort compare gaps;
  (* With geometric sojourns at these switch probabilities the stream
     spends real time in both phases: the tightest quartile of gaps
     must be burst-like (well under the calm mean) and the loosest
     calm-like (well over the burst mean). *)
  let q1 = gaps.(Array.length gaps / 4)
  and q4 = gaps.(Array.length gaps - 1) in
  check_bool "burst gaps are tight" true (q1 < 1_000);
  check_bool "calm gaps are loose" true (q4 > 1_000);
  check_bool "arrivals are ordered" true (Array.for_all (fun g -> g >= 0) gaps)

let test_mmpp_clients_do_not_perturb () =
  let bare = mmpp ~seed:43 () in
  let picked = mmpp ~clients:(Load.uniform_clients ~n:4) ~seed:43 () in
  check_int "same length" (Array.length bare) (Array.length picked);
  Array.iteri
    (fun i (x : Load.arrival) ->
      check_int "picker does not move arrivals" x.Load.at picked.(i).Load.at)
    bare

let test_mmpp_validates () =
  List.iter
    (fun (name, f) ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (name ^ " was accepted"))
    [
      ( "non-positive gap",
        fun () ->
          Load.mmpp ~rng:(Rng.create ~seed:1) ~calm_gap:0.0 ~burst_gap:1.0
            ~p_burst:0.1 ~p_calm:0.1 ~count:4 ~mix () );
      ( "probability above one",
        fun () ->
          Load.mmpp ~rng:(Rng.create ~seed:1) ~calm_gap:1.0 ~burst_gap:1.0
            ~p_burst:1.5 ~p_calm:0.1 ~count:4 ~mix () );
    ]

(* --- diurnal ------------------------------------------------------------- *)

let diurnal ~seed () =
  Load.diurnal ~rng:(Rng.create ~seed) ~mean_gap:1_000.0 ~amp:0.8
    ~period:50_000 ~count:200 ~mix ()

let test_diurnal_deterministic () =
  same_schedule "diurnal" (diurnal ~seed:44 ()) (diurnal ~seed:44 ())

let test_diurnal_validates () =
  match
    Load.diurnal ~rng:(Rng.create ~seed:1) ~mean_gap:1_000.0 ~amp:1.5
      ~period:1_000 ~count:4 ~mix ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "amplitude above one was accepted"

(* --- flash --------------------------------------------------------------- *)

let flash_at = 50_000
let flash_len = 30_000

let flash ~seed () =
  Load.flash
    ~clients:(Load.uniform_clients ~n:3)
    ~rng:(Rng.create ~seed) ~mean_gap:1_000.0 ~count:200 ~mix ~flash_at
    ~flash_len ~flash_factor:6.0 ~crowd_base:100 ~crowd_n:4 ()

let test_flash_deterministic () =
  same_schedule "flash" (flash ~seed:45 ()) (flash ~seed:45 ())

(* The base stream is drawn first, client tail included: the flash
   schedule's non-crowd arrivals are byte-identical to plain poisson
   from the same seed. *)
let test_flash_extends_poisson () =
  let flashed = flash ~seed:46 () in
  let plain =
    Load.poisson
      ~clients:(Load.uniform_clients ~n:3)
      ~rng:(Rng.create ~seed:46) ~mean_gap:1_000.0 ~count:200 ~mix ()
  in
  let base =
    Array.of_list
      (List.filter
         (fun (a : Load.arrival) -> a.Load.client < 100)
         (Array.to_list flashed))
  in
  (* Sequence numbers are restamped when the crowd is spliced in, so
     compare times, clients and kinds. *)
  check_int "flash adds, never replaces" (Array.length plain) (Array.length base);
  Array.iteri
    (fun i (x : Load.arrival) ->
      let y = base.(i) in
      check_int "same arrival time" x.Load.at y.Load.at;
      check_int "same client" x.Load.client y.Load.client;
      check_bool "same kind" true (x.Load.req.Wire.rk = y.Load.req.Wire.rk))
    plain

let test_flash_crowd_in_window () =
  let flashed = flash ~seed:47 () in
  let crowd =
    List.filter
      (fun (a : Load.arrival) -> a.Load.client >= 100)
      (Array.to_list flashed)
  in
  check_bool "the crowd showed up" true (List.length crowd > 0);
  List.iter
    (fun (a : Load.arrival) ->
      check_bool "crowd identity in range" true
        (a.Load.client >= 100 && a.Load.client < 104);
      check_bool "crowd confined to its window" true
        (a.Load.at >= flash_at && a.Load.at < flash_at + flash_len))
    crowd

(* --- think times --------------------------------------------------------- *)

let test_think_times_deterministic_and_clamped () =
  let think ~seed = Load.think_times ~rng:(Rng.create ~seed) ~mean:800.0 ~count:32 in
  let a = think ~seed:48 and b = think ~seed:48 in
  for k = 0 to 99 do
    check_int "same seed, same think time" (a k) (b k);
    check_bool "think time respects the floor" true (a k >= 1);
    check_int "lookup wraps at count" (a k) (a (k + 32))
  done;
  match Load.think_times ~rng:(Rng.create ~seed:1) ~mean:0.0 ~count:4 with
  | exception Invalid_argument _ -> ()
  | (_ : int -> int) -> Alcotest.fail "non-positive mean was accepted"

let suites =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "serve.load-models",
      [
        tc "mmpp is deterministic" test_mmpp_deterministic;
        tc "mmpp bursts" test_mmpp_bursts;
        tc "mmpp clients do not perturb arrivals"
          test_mmpp_clients_do_not_perturb;
        tc "mmpp validates arguments" test_mmpp_validates;
        tc "diurnal is deterministic" test_diurnal_deterministic;
        tc "diurnal validates arguments" test_diurnal_validates;
        tc "flash is deterministic" test_flash_deterministic;
        tc "flash extends poisson" test_flash_extends_poisson;
        tc "flash crowd stays in its window" test_flash_crowd_in_window;
        tc "think times deterministic and clamped"
          test_think_times_deterministic_and_clamped;
      ] );
  ]
