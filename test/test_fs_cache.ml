(* Regression tests for the mount-cache PR:

   - the {!Fs_cache} policy in isolation: TTL expiry, the
     importance-decay eviction order, notification sequencing and the
     invalidation primitives' exact semantics,
   - bugfix: the single-entry readdir cache is dropped when a create,
     unlink or rename goes through the same mount (it used to keep
     serving the stale listing),
   - bugfix: a reader holding an open handle sees bytes another VPE
     appended — the close-commit broadcast refreshes the cached size
     in place (it used to return a short read forever),
   - bugfix: after an m3fs crash-restart, a caching client flushes and
     re-attaches instead of retry-looping against revoked capabilities,
   - warm paths: re-opening and re-reading a hot file through the
     cache costs zero service round-trips (≥1.5× fewer than cold, the
     gate the harness cells also enforce), and warm stats hit the attr
     table,
   - the invalidation matrix across VPEs: append, truncate, unlink and
     rename each propagate to a caching observer, and under a sharded
     mount only the owning shard's cache is disturbed,
   - zero cost when off: a cache-off run emits no cache events and is
     byte-identical across repeats; a cache-on run is deterministic
     too. *)

module Engine = M3_sim.Engine
module Process = M3_sim.Process
module Platform = M3_hw.Platform
module Core_type = M3_hw.Core_type
module Plan = M3_fault.Plan
module Bootstrap = M3.Bootstrap
module Env = M3.Env
module Errno = M3.Errno
module Gate = M3.Gate
module Vfs = M3.Vfs
module File = M3.File
module Fs_cache = M3.Fs_cache
module Fs_proto = M3.Fs_proto
module M3fs = M3.M3fs
module Shard = M3.Shard
module Vpe_api = M3.Vpe_api
module Obs = M3_obs.Obs
module Event = M3_obs.Event

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let ok = Errno.ok_exn

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* --- the policy module in isolation ------------------------------------ *)

let cfg ?(ttl = 1_000_000) ?(capacity = 64) ?(half_life = 1_000) () =
  { Fs_cache.c_ttl = ttl; c_capacity = capacity; c_half_life = half_life }

let test_ttl_expiry () =
  let c = Fs_cache.create ~config:(cfg ~ttl:100 ()) () in
  ignore (Fs_cache.insert_file c ~now:0 ~ino:1 ~size:10);
  check_bool "within TTL: hit" true (Fs_cache.file_entry c ~now:100 ~ino:1 <> None);
  (* the hit refreshed the TTL: servable at 200, gone at 201 *)
  check_bool "refreshed TTL: hit" true (Fs_cache.file_entry c ~now:200 ~ino:1 <> None);
  check_bool "expired: miss" true (Fs_cache.file_entry c ~now:301 ~ino:1 = None);
  check_bool "expired entry was dropped" true
    (Fs_cache.file_entry c ~now:0 ~ino:1 = None);
  let st = { Fs_proto.st_size = 1; st_is_dir = false; st_ino = 9; st_extents = 1 } in
  Fs_cache.insert_attr c ~now:0 ~path:"/a" st;
  check_bool "attr within TTL" true (Fs_cache.attr c ~now:50 ~path:"/a" <> None);
  check_bool "attr expired" true (Fs_cache.attr c ~now:400 ~path:"/a" = None);
  let s = Fs_cache.stats c in
  check_bool "hits and misses were counted" true
    (s.Fs_cache.s_hits = 3 && s.Fs_cache.s_misses = 3)

(* At capacity the entry with the lowest decayed importance goes —
   recency can beat raw hit count. *)
let test_decay_eviction_order () =
  let c = Fs_cache.create ~config:(cfg ~capacity:2 ()) () in
  (* hot beats cold at equal age *)
  ignore (Fs_cache.insert_file c ~now:0 ~ino:1 ~size:1);
  for _ = 1 to 5 do ignore (Fs_cache.file_entry c ~now:0 ~ino:1) done;
  ignore (Fs_cache.insert_file c ~now:0 ~ino:2 ~size:1);
  ignore (Fs_cache.insert_file c ~now:0 ~ino:3 ~size:1);
  check_bool "hot entry survives" true (Fs_cache.file_entry c ~now:0 ~ino:1 <> None);
  check_bool "one-shot entry evicted" true
    (Fs_cache.file_entry c ~now:0 ~ino:2 = None);
  check_int "exactly one eviction" 1 (Fs_cache.stats c).Fs_cache.s_evictions;
  (* a once-hot but idle entry decays below a recent one: 8 hits
     halved over 5 idle half-lives score 0, 2 recent hits score 2 *)
  let c = Fs_cache.create ~config:(cfg ~capacity:2 ~half_life:1_000 ()) () in
  ignore (Fs_cache.insert_file c ~now:0 ~ino:1 ~size:1);
  for _ = 1 to 7 do ignore (Fs_cache.file_entry c ~now:0 ~ino:1) done;
  ignore (Fs_cache.insert_file c ~now:5_000 ~ino:2 ~size:1);
  ignore (Fs_cache.file_entry c ~now:5_000 ~ino:2);
  ignore (Fs_cache.insert_file c ~now:5_000 ~ino:3 ~size:1);
  check_bool "idle-decayed entry evicted" true
    (Fs_cache.file_entry c ~now:5_000 ~ino:1 = None);
  check_bool "recent entry survives" true
    (Fs_cache.file_entry c ~now:5_000 ~ino:2 <> None)

let test_seq_tracking () =
  let c = Fs_cache.create () in
  Fs_cache.reset_seq c;
  check_bool "seq 0" true (Fs_cache.note_seq c ~seq:0 = `Ok);
  check_bool "seq 1" true (Fs_cache.note_seq c ~seq:1 = `Ok);
  check_bool "seq 3 is a gap" true (Fs_cache.note_seq c ~seq:3 = `Gap);
  check_bool "seq 4 resumes" true (Fs_cache.note_seq c ~seq:4 = `Ok);
  Fs_cache.reset_seq c;
  check_bool "after reset, 0 again" true (Fs_cache.note_seq c ~seq:0 = `Ok)

let fake_extent ~foff ~len =
  { Fs_cache.x_foff = foff; x_len = len;
    x_gate = Gate.mem_gate_of_sel ~sel:999 ~size:len }

let test_inval_semantics () =
  let c = Fs_cache.create () in
  let e = Fs_cache.insert_file c ~now:0 ~ino:7 ~size:100 in
  e.Fs_cache.fe_extents <- [ fake_extent ~foff:0 ~len:100 ];
  e.Fs_cache.fe_fetched <- 1;
  e.Fs_cache.fe_alloc_end <- 100;
  (* append: size refreshed in place; extents lying wholly inside the
     committed size survive (the cross-open reuse the kept counter
     measures) *)
  check_bool "inval_ino hits" true (Fs_cache.inval_ino c ~ino:7 ~size:150);
  check_int "shared handle sees the new size" 150 e.Fs_cache.fe_size;
  check_bool "covered extent kept" true
    (List.length e.Fs_cache.fe_extents = 1);
  check_int "coverage preserved with it" 100 e.Fs_cache.fe_alloc_end;
  check_bool "still valid (no revalidation round-trip)" true e.Fs_cache.fe_valid;
  (* truncate below the extent: now it must go *)
  ignore (Fs_cache.inval_ino c ~ino:7 ~size:50);
  check_bool "truncated extent dropped" true (e.Fs_cache.fe_extents = []);
  check_int "coverage reset with it" 0 e.Fs_cache.fe_alloc_end;
  (* unlink: entry leaves the table, surviving handles read EOF *)
  check_bool "inval_remove hits" true
    (Fs_cache.inval_remove c ~ino:7 ~size:0 ~path:"/x");
  check_int "handle sees EOF" 0 e.Fs_cache.fe_size;
  check_bool "gone from the table" true (Fs_cache.file_entry c ~now:0 ~ino:7 = None);
  (* rename source: entry leaves the table but handles keep reading *)
  let e2 = Fs_cache.insert_file c ~now:0 ~ino:8 ~size:64 in
  e2.Fs_cache.fe_extents <- [ fake_extent ~foff:0 ~len:64 ];
  ignore (Fs_cache.inval_remove c ~ino:8 ~size:64 ~path:"/y");
  check_int "renamed: size kept" 64 e2.Fs_cache.fe_size;
  check_bool "renamed: extents kept" true (e2.Fs_cache.fe_extents <> []);
  (* flush: generation bump, surviving handles must revalidate *)
  let e3 = Fs_cache.insert_file c ~now:0 ~ino:9 ~size:32 in
  let gen = Fs_cache.generation c in
  Fs_cache.flush c;
  check_int "generation bumped" (gen + 1) (Fs_cache.generation c);
  check_bool "handle must revalidate" false e3.Fs_cache.fe_valid;
  check_bool "table emptied" true (Fs_cache.file_entry c ~now:0 ~ino:9 = None)

(* --- boot plumbing ----------------------------------------------------- *)

let seed ?(size = 4096) ?(dir = false) path =
  { M3fs.sd_path = path; sd_size = size; sd_blocks_per_extent = 4;
    sd_dir = dir }

(* Boots kernel + m3fs with [seeds], runs [main], returns its exit
   code and — when [capture] — the recorded event log. *)
let run ?platform_config ?(fs_instances = 1) ?(capture = false) ~seeds main =
  let engine = Engine.create () in
  let mem = Obs.Memory.create () in
  let obs =
    if not capture then None
    else begin
      let o = Obs.of_engine engine in
      Obs.attach o (Obs.Memory.sink mem);
      Some o
    end
  in
  let fs ~dram = { (M3fs.default_config ~dram) with seed = seeds } in
  let sys = Bootstrap.start ?platform_config ?obs ~fs ~fs_instances engine in
  let exit = Bootstrap.launch sys ~name:"app" (fun env -> main sys env) in
  ignore (Engine.run engine);
  M3fs.forget ~engine;
  let code = Option.value ~default:min_int (Process.Ivar.peek exit) in
  (code, Obs.Memory.to_string mem)

let read_whole env file ~buf =
  let rec go got =
    match ok (File.read env file ~local:buf ~len:1024) with
    | 0 -> got
    | n -> go (got + n)
  in
  go 0

(* --- bugfix: stale readdir cache on same-mount mutations ---------------- *)

let list_dir env path =
  let rec go i acc =
    match ok (Vfs.readdir env path ~index:i) with
    | None -> List.rev acc
    | Some (name, _) -> go (i + 1) (name :: acc)
  in
  go 0 []

(* The cache is OFF here: the readdir batch cache predates this PR and
   its staleness was a plain bug. A listing, then a create / unlink /
   rename through the same mount, then the same listing again must
   reflect the change. *)
let test_readdir_cache_invalidation () =
  let code, _ =
    run ~seeds:[ seed ~dir:true "/d"; seed "/d/a"; seed "/d/b" ]
      (fun _sys env ->
        ok (Vfs.mount_root env);
        check_int "initial listing" 2 (List.length (list_dir env "/d"));
        (* create: the new file must appear *)
        let f =
          ok (Vfs.open_ env "/d/c" ~flags:(Fs_proto.o_create lor Fs_proto.o_write))
        in
        ok (File.close env f);
        check_int "after create" 3 (List.length (list_dir env "/d"));
        (* unlink: the file must disappear *)
        ok (Vfs.unlink env "/d/a");
        check_int "after unlink" 2 (List.length (list_dir env "/d"));
        (* rename: old name out, new name in *)
        ok (Vfs.rename env ~src:"/d/b" ~dst:"/d/z");
        let names = list_dir env "/d" in
        check_bool "renamed away" false
          (List.exists (fun n -> contains n "b") names);
        check_bool "renamed to" true
          (List.exists (fun n -> contains n "z") names);
        0)
  in
  check_int "exit" 0 code

(* --- warm paths: zero round-trips on a hot file ------------------------- *)

let test_warm_reopen_costs_nothing () =
  let code, _ =
    run ~seeds:[ seed ~size:(16 * 1024) "/hot" ]
      (fun _sys env ->
        ok (Vfs.mount_root env);
        ok (Vfs.enable_cache env ~path:"/");
        let buf = Env.alloc_spm env ~size:1024 in
        let pass () =
          let before = Vfs.round_trips env in
          let f = ok (Vfs.open_ env "/hot" ~flags:Fs_proto.o_read) in
          let got = read_whole env f ~buf in
          ok (File.close env f);
          check_int "whole file" (16 * 1024) got;
          Vfs.round_trips env - before
        in
        let cold = pass () in
        let warm = pass () in
        check_bool "cold pass pays round-trips" true (cold >= 3);
        check_int "warm pass is free" 0 warm;
        (* the PR's acceptance gate, in the same form the harness
           cells use: at least 1.5x fewer round-trips when warm *)
        check_bool "warm >= 1.5x fewer" true (warm * 3 <= cold * 2);
        let hits, misses, _ = Vfs.cache_totals env in
        check_bool "warm pass hit the cache" true (hits > 0 && misses > 0);
        0)
  in
  check_int "exit" 0 code

let test_warm_stat_hits_attr_cache () =
  let code, _ =
    run ~seeds:[ seed "/f" ]
      (fun _sys env ->
        ok (Vfs.mount_root env);
        ok (Vfs.enable_cache env ~path:"/");
        let st1 = ok (Vfs.stat env "/f") in
        let before = Vfs.round_trips env in
        let st2 = ok (Vfs.stat env "/f") in
        check_int "warm stat is free" 0 (Vfs.round_trips env - before);
        check_bool "same answer" true (st1 = st2);
        0)
  in
  check_int "exit" 0 code

(* --- bugfix + matrix: cross-VPE coherence -------------------------------- *)

(* Runs [body] in a child VPE (which does its own mounting — a plain,
   non-caching client) and waits for it to finish; the caller's
   caching mount must observe the effect afterwards. *)
let in_child env ~name body =
  match
    Vpe_api.run_supervised env ~name ~core:Core_type.General_purpose
      (fun cenv ->
        body cenv;
        0)
  with
  | Ok 0 -> ()
  | Ok code -> Alcotest.failf "%s exited %d" name code
  | Error e -> Alcotest.failf "%s failed: %s" name (Errno.to_string e)

let rooted body cenv =
  ok (Vfs.mount_root cenv);
  body cenv

(* The short-read bug: a reader holds an open handle while another VPE
   appends and closes. The close commit broadcasts the new size; the
   reader's next read must return the appended bytes, not EOF at the
   stale size. *)
let test_cross_vpe_append_is_seen () =
  let code, _ =
    run ~seeds:[ seed ~size:2048 "/shared" ]
      (fun _sys env ->
        ok (Vfs.mount_root env);
        ok (Vfs.enable_cache env ~path:"/");
        let buf = Env.alloc_spm env ~size:1024 in
        let f = ok (Vfs.open_ env "/shared" ~flags:Fs_proto.o_read) in
        check_int "first read: seeded size" 2048 (read_whole env f ~buf);
        in_child env ~name:"appender"
          (rooted (fun cenv ->
               let g = ok (Vfs.open_ cenv "/shared" ~flags:Fs_proto.o_write) in
               ok (File.seek cenv g (File.size g));
               ok (File.write_string cenv g (String.make 512 'x'));
               ok (File.close cenv g)));
        (* same still-open handle: the invalidation refreshed the
           shared entry in place *)
        ok (File.seek env f 0);
        check_int "second read sees the appended bytes" 2560
          (read_whole env f ~buf);
        ok (File.close env f);
        let _, _, invals = Vfs.cache_totals env in
        check_bool "the notification invalidated cached state" true
          (invals >= 1);
        0)
  in
  check_int "exit" 0 code

(* Truncate (o_trunc by another VPE) must shrink the cached size. *)
let test_cross_vpe_truncate_is_seen () =
  let code, _ =
    run ~seeds:[ seed ~size:4096 "/t" ]
      (fun _sys env ->
        ok (Vfs.mount_root env);
        ok (Vfs.enable_cache env ~path:"/");
        let buf = Env.alloc_spm env ~size:1024 in
        let f = ok (Vfs.open_ env "/t" ~flags:Fs_proto.o_read) in
        check_int "before" 4096 (read_whole env f ~buf);
        in_child env ~name:"truncator"
          (rooted (fun cenv ->
               let g =
                 ok
                   (Vfs.open_ cenv "/t"
                      ~flags:(Fs_proto.o_write lor Fs_proto.o_trunc))
               in
               ok (File.write_string cenv g "tiny");
               ok (File.close cenv g)));
        ok (File.seek env f 0);
        check_int "after truncate+rewrite" 4 (read_whole env f ~buf);
        ok (File.close env f);
        0)
  in
  check_int "exit" 0 code

(* Unlink by another VPE: cached attr and extents are dropped; a fresh
   stat sees E_not_found, the surviving handle reads EOF (never the
   freed blocks). *)
let test_cross_vpe_unlink_is_seen () =
  let code, _ =
    run ~seeds:[ seed ~size:2048 "/doomed" ]
      (fun _sys env ->
        ok (Vfs.mount_root env);
        ok (Vfs.enable_cache env ~path:"/");
        let buf = Env.alloc_spm env ~size:1024 in
        ignore (ok (Vfs.stat env "/doomed"));
        let f = ok (Vfs.open_ env "/doomed" ~flags:Fs_proto.o_read) in
        in_child env ~name:"remover"
          (rooted (fun cenv -> ok (Vfs.unlink cenv "/doomed")));
        (match Vfs.stat env "/doomed" with
        | Error Errno.E_not_found -> ()
        | Ok _ -> Alcotest.fail "stat served a stale cached attr"
        | Error e -> Alcotest.failf "stat: %s" (Errno.to_string e));
        check_int "surviving handle reads EOF" 0 (read_whole env f ~buf);
        0)
  in
  check_int "exit" 0 code

(* Rename by another VPE: the old path's cached attr dies, the new
   path resolves, and a handle opened before the rename keeps reading
   — the inode kept its blocks. *)
let test_cross_vpe_rename_is_seen () =
  let code, _ =
    run ~seeds:[ seed ~size:2048 "/from" ]
      (fun _sys env ->
        ok (Vfs.mount_root env);
        ok (Vfs.enable_cache env ~path:"/");
        let buf = Env.alloc_spm env ~size:1024 in
        ignore (ok (Vfs.stat env "/from"));
        let f = ok (Vfs.open_ env "/from" ~flags:Fs_proto.o_read) in
        check_int "warm-up read" 2048 (read_whole env f ~buf);
        in_child env ~name:"renamer"
          (rooted (fun cenv -> ok (Vfs.rename cenv ~src:"/from" ~dst:"/to")));
        (match Vfs.stat env "/from" with
        | Error Errno.E_not_found -> ()
        | Ok _ -> Alcotest.fail "stat served a stale attr for the old name"
        | Error e -> Alcotest.failf "stat: %s" (Errno.to_string e));
        check_int "new name resolves" 2048
          (ok (Vfs.stat env "/to")).Fs_proto.st_size;
        ok (File.seek env f 0);
        check_int "pre-rename handle keeps reading" 2048 (read_whole env f ~buf);
        ok (File.close env f);
        0)
  in
  check_int "exit" 0 code

(* Two top-level directories the 2-shard ring assigns to different
   shards (scanned, not hard-coded — same idiom as test_shard). *)
let disjoint_dirs () =
  let ring = Shard.create ~names:[| "m3fs.0"; "m3fs.1" |] () in
  let dir_of shard =
    let rec scan i =
      if i > 64 then Alcotest.failf "no directory hashing to shard %d" shard
      else
        let d = Printf.sprintf "/d%d" i in
        if Shard.owner ring ~path:d = shard then d else scan (i + 1)
    in
    scan 0
  in
  (dir_of 0, dir_of 1)

(* Sharded mount: an invalidation arrives on the owning shard's notify
   channel and disturbs only that shard's cache — the other shard's
   attrs stay warm. *)
let test_sharded_cache_coherence () =
  let d0, d1 = disjoint_dirs () in
  let f0 = d0 ^ "/f" and f1 = d1 ^ "/f" in
  let config = { Platform.default_config with dram_size = 96 * 1024 * 1024 } in
  let code, _ =
    run ~platform_config:config ~fs_instances:2
      ~seeds:
        [ seed ~dir:true d0; seed ~size:2048 f0;
          seed ~dir:true d1; seed ~size:2048 f1 ]
      (fun sys env ->
        let services = sys.Bootstrap.fs_services in
        ok (Vfs.mount_sharded env ~path:"/" ~services);
        ok (Vfs.enable_cache env ~path:"/");
        ignore (ok (Vfs.stat env f0));
        ignore (ok (Vfs.stat env f1));
        in_child env ~name:"shard-writer" (fun cenv ->
            ok (Vfs.mount_sharded cenv ~path:"/" ~services);
            let g =
              ok
                (Vfs.open_ cenv f0
                   ~flags:(Fs_proto.o_write lor Fs_proto.o_trunc))
            in
            ok (File.write_string cenv g "abc");
            ok (File.close cenv g));
        (* shard 0's attr was invalidated: the fresh stat sees the
           truncated size *)
        check_int "mutated shard refetches" 3
          (ok (Vfs.stat env f0)).Fs_proto.st_size;
        (* shard 1 was untouched: its attr is still warm *)
        let before = Vfs.round_trips env in
        check_int "other shard stays warm" 2048
          (ok (Vfs.stat env f1)).Fs_proto.st_size;
        check_int "warm shard stat is free" 0 (Vfs.round_trips env - before);
        0)
  in
  check_int "exit" 0 code

(* --- bugfix: crash-restart recovery -------------------------------------- *)

(* m3fs runs supervised and its PE is killed mid-workload by an
   explicit fault schedule. The caching client must flush (reason
   "crash"), re-open a session with the restarted instance, refetch
   capabilities and finish — instead of retry-looping on the revoked
   ones. PE layout: kernel = 0, m3fs = 1, app = 2, restart lands on a
   spare. *)
let test_crash_restart_recovery () =
  let engine = Engine.create () in
  let flushes = ref [] in
  let obs = Obs.of_engine engine in
  Obs.attach obs
    {
      Obs.sink_name = "flush-probe";
      sink_emit =
        (fun ~at:_ ev ->
          match ev with
          | Event.Fs_cache_flush { reason; _ } -> flushes := reason :: !flushes
          | _ -> ());
    };
  let plan =
    Plan.create
      ~config:
        {
          Plan.default_config with
          drop_prob = 0.0;
          link_fault_prob = 0.0;
          corrupt_prob = 0.0;
          stall_prob = 0.0;
          (* Low crash point: the warm cache means re-opens never reach
             the server, so its DTU only accepts a handful of commands
             (session setup, the cold open/close, the uncached stats).
             10 lands inside the stat loop. *)
          crashes = [ (1, 10) ];
        }
      ~seed:0xF5 ()
  in
  let sys = Bootstrap.start ~no_fs:true ~obs ~faults:plan engine in
  let dram = Platform.dram sys.Bootstrap.platform in
  let fs_config =
    { (M3fs.default_config ~dram) with seed = [ seed ~size:8192 "/data" ] }
  in
  (* Launch m3fs directly (not via Bootstrap.supervise, which defers
     its launch into a spawned process) so its VPE deterministically
     claims PE 1 — the PE the fault plan kills. A watcher relaunches
     it once after the abort, on a spare PE. *)
  let fs_restarts = ref 0 in
  let iv0 = Bootstrap.launch sys ~name:"m3fs" (M3fs.main fs_config) in
  ignore
    (Process.spawn engine ~name:"fs-watcher" (fun () ->
         let code = Process.Ivar.read iv0 in
         if code = M3.Kernel.abort_exit_code then begin
           incr fs_restarts;
           ignore (Bootstrap.launch sys ~name:"m3fs" (M3fs.main fs_config))
         end));
  let exit =
    Bootstrap.launch sys ~name:"app" (fun env ->
        ok (Vfs.mount_root env);
        ok (Vfs.enable_cache env ~path:"/");
        let buf = Env.alloc_spm env ~size:1024 in
        let f = ok (Vfs.open_ env "/data" ~flags:Fs_proto.o_read) in
        check_int "warm-up read" 8192 (read_whole env f ~buf);
        ok (File.close env f);
        (* drive the service's DTU past the crash point, recovering
           transparently, and keep re-reading through the cache *)
        for i = 1 to 12 do
          (match Vfs.stat env (Printf.sprintf "/miss%d" i) with
          | Error Errno.E_not_found -> ()
          | Ok _ -> Alcotest.fail "phantom file"
          | Error e -> Alcotest.failf "stat: %s" (Errno.to_string e));
          let f = ok (Vfs.open_ env "/data" ~flags:Fs_proto.o_read) in
          check_int "re-read" 8192 (read_whole env f ~buf);
          ok (File.close env f)
        done;
        0)
  in
  ignore (Engine.run engine);
  M3fs.forget ~engine;
  check_int "client recovered and finished" 0
    (Option.value ~default:min_int (Process.Ivar.peek exit));
  check_int "exactly one crash injected" 1 (Plan.crashes_injected plan);
  check_int "m3fs was restarted once" 1 !fs_restarts;
  check_bool "cache flushed with reason=crash" true
    (List.mem "crash" !flushes)

(* --- zero cost when off + determinism ------------------------------------ *)

(* One workload over every op class; [cache] decides whether the mount
   caches. *)
let logged_run ~cache =
  run ~capture:true
    ~seeds:[ seed ~dir:true "/w"; seed ~size:4096 "/w/a"; seed "/w/b" ]
    (fun _sys env ->
      ok (Vfs.mount_root env);
      if cache then ok (Vfs.enable_cache env ~path:"/");
      let buf = Env.alloc_spm env ~size:1024 in
      for _ = 1 to 2 do
        let f = ok (Vfs.open_ env "/w/a" ~flags:Fs_proto.o_read) in
        ignore (read_whole env f ~buf);
        ok (File.close env f);
        ignore (ok (Vfs.stat env "/w/b"));
        ignore (list_dir env "/w")
      done;
      let f =
        ok (Vfs.open_ env "/w/c" ~flags:(Fs_proto.o_create lor Fs_proto.o_write))
      in
      ok (File.write_string env f "hello");
      ok (File.close env f);
      ok (Vfs.rename env ~src:"/w/c" ~dst:"/w/d");
      ok (Vfs.unlink env "/w/d");
      0)

let test_cache_off_is_silent_and_deterministic () =
  let code1, log1 = logged_run ~cache:false in
  let code2, log2 = logged_run ~cache:false in
  check_int "exit" 0 code1;
  check_int "exit" 0 code2;
  check_bool "log not empty" true (String.length log1 > 0);
  check_string "byte-identical across repeats" log1 log2;
  (* no cache machinery leaks into an uncached run's event stream *)
  check_bool "no fs.cache events" false (contains log1 "fs.cache");
  check_bool "no fs.inval events" false (contains log1 "fs.inval")

let test_cache_on_is_deterministic () =
  let code1, log1 = logged_run ~cache:true in
  let code2, log2 = logged_run ~cache:true in
  check_int "exit" 0 code1;
  check_int "exit" 0 code2;
  check_string "byte-identical across repeats" log1 log2;
  check_bool "cache hits observable" true (contains log1 "fs.cache.hit");
  (* rename/unlink through the caching mount invalidate locally; the
     broadcast path is exercised by the coherence suite, where a
     second session is registered *)
  check_bool "invalidations observable" true (contains log1 "fs.cache.inval")

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "fscache.policy",
      [
        tc "TTL expiry" test_ttl_expiry;
        tc "decay eviction order" test_decay_eviction_order;
        tc "notification sequencing" test_seq_tracking;
        tc "invalidation semantics" test_inval_semantics;
      ] );
    ( "fscache.dir",
      [ tc "readdir cache dropped on mutation" test_readdir_cache_invalidation ] );
    ( "fscache.warm",
      [
        tc "warm reopen is free (>=1.5x gate)" test_warm_reopen_costs_nothing;
        tc "warm stat hits the attr table" test_warm_stat_hits_attr_cache;
      ] );
    ( "fscache.coherence",
      [
        tc "cross-VPE append is seen" test_cross_vpe_append_is_seen;
        tc "cross-VPE truncate is seen" test_cross_vpe_truncate_is_seen;
        tc "cross-VPE unlink is seen" test_cross_vpe_unlink_is_seen;
        tc "cross-VPE rename is seen" test_cross_vpe_rename_is_seen;
        tc "sharded: only the owning shard is disturbed"
          test_sharded_cache_coherence;
      ] );
    ( "fscache.crash",
      [ tc "crash-restart: flush and re-attach" test_crash_restart_recovery ] );
    ( "fscache.off",
      [
        tc "cache off: silent and deterministic"
          test_cache_off_is_silent_and_deterministic;
        tc "cache on: deterministic" test_cache_on_is_deterministic;
      ] );
  ]
