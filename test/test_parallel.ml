(* Tests for the parallel host engine: heap slot clearing, partitioned
   windows with cross-partition delivery, the domain pool, and — the
   load-bearing property — byte-identical simulated results at 1, 2
   and 4 domains. *)

module Engine = M3_sim.Engine
module Heap = M3_sim.Heap
module Domainpool = M3_sim.Domainpool
module Obs = M3_obs.Obs
module Fabric = M3_noc.Fabric
module Topology = M3_noc.Topology
module Runner = M3_harness.Runner
module Fig6x = M3_harness.Fig6x

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- heap: popped slots must not pin their entries ------------------- *)

(* Kept out of the test body so the payload cannot stay live in the
   caller's frame: once this returns, only the heap's backing array
   could still reference it. *)
let[@inline never] push_pop_cycle h =
  let payload = Array.make 1024 0 in
  let w = Weak.create 1 in
  Weak.set w 0 (Some payload);
  Heap.push h ~key:1 payload;
  (match Heap.pop h with
  | Some (_, v) -> assert (v == payload)
  | None -> assert false);
  w

let test_heap_no_pinning () =
  let h = Heap.create () in
  (* A surviving entry, so the heap stays allocated across the pop. *)
  Heap.push h ~key:5 (Array.make 1 0);
  let w = push_pop_cycle h in
  Gc.full_major ();
  check_bool "drained slot holds no reference to the popped entry" true
    (Weak.get w 0 = None)

(* --- heap: property test against a sorted-list oracle ---------------- *)

(* [Some k] pushes with key [k], [None] pops; the oracle is a stable
   sorted association list, so FIFO-among-equal-keys is checked too. *)
let qcheck_heap_oracle =
  QCheck.Test.make ~name:"heap matches a sorted-list oracle under push/pop"
    ~count:300
    QCheck.(list (option (int_bound 30)))
    (fun ops ->
      let h = Heap.create () in
      let oracle = ref [] in
      let seq = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some k ->
            Heap.push h ~key:k !seq;
            let rec ins = function
              | (k', v) :: rest when k' <= k -> (k', v) :: ins rest
              | rest -> (k, !seq) :: rest
            in
            oracle := ins !oracle;
            incr seq;
            Heap.length h = List.length !oracle
            && Heap.min_key h = Option.map fst (List.nth_opt !oracle 0)
          | None -> (
            match !oracle with
            | [] -> Heap.pop h = None
            | entry :: rest ->
              oracle := rest;
              Heap.pop h = Some entry))
        ops)

(* --- atomic id minting across domains -------------------------------- *)

let test_engine_ids_atomic () =
  let per_domain = 16 in
  let ids =
    Domainpool.run ~domains:4
      (List.init 4 (fun _ () ->
           List.init per_domain (fun _ -> Engine.id (Engine.create ()))))
    |> List.concat
  in
  let distinct = List.sort_uniq compare ids in
  check_int "engine ids minted concurrently are distinct"
    (4 * per_domain) (List.length distinct)

(* --- domain pool ------------------------------------------------------ *)

let test_domainpool_order () =
  let expected = List.init 20 (fun i -> i * i) in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "results keep input order at %d domains" domains)
        expected
        (Domainpool.run ~domains (List.init 20 (fun i () -> i * i))))
    [ 1; 3; 8 ]

let test_domainpool_errors () =
  match
    Domainpool.run ~domains:2
      [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ]
  with
  | _ -> Alcotest.fail "expected the thunk's exception to propagate"
  | exception Failure m -> Alcotest.(check string) "first error wins" "boom" m

(* --- partitioned engine ----------------------------------------------- *)

let test_lookahead_enforced () =
  let e = Engine.create ~partitions:2 () in
  Engine.set_lookahead e 5;
  let violated = ref false and landed = ref false in
  Engine.schedule_on e ~partition:0 ~time:10 (fun () ->
      (* From partition 0 at cycle 10: cycle 12 is inside the 5-cycle
         lookahead window, cycle 15 is exactly on the horizon. *)
      (match Engine.schedule_on e ~partition:1 ~time:12 (fun () -> ()) with
      | () -> ()
      | exception Invalid_argument _ -> violated := true);
      Engine.schedule_on e ~partition:1 ~time:15 (fun () -> landed := true));
  ignore (Engine.run e);
  check_bool "sub-lookahead delivery rejected" true !violated;
  check_bool "on-horizon delivery committed" true !landed

(* A deterministic token storm over 4 partitions: every event adds a
   value derived from its (partition, time, ttl) into its partition's
   private cell and forwards two tokens across partitions. The final
   clock, event count and per-partition sums must not depend on the
   domain count. *)
let run_token_storm ~domains =
  let parts = 4 in
  let e = Engine.create ~partitions:parts ~domains () in
  Engine.set_lookahead e 3;
  let acc = Array.make parts 0 in
  let rec hop ~p ~time ~ttl =
    if ttl > 0 then
      Engine.schedule_on e ~partition:p ~time (fun () ->
          acc.(p) <- acc.(p) + (time * 7) + ttl;
          let now = Engine.now e in
          hop ~p:((p + 1) mod parts) ~time:(now + 3 + (ttl mod 5)) ~ttl:(ttl - 1);
          hop ~p:((p + 3) mod parts) ~time:(now + 4) ~ttl:(ttl - 2))
  in
  for i = 0 to parts - 1 do
    hop ~p:i ~time:(i + 1) ~ttl:12
  done;
  let final = Engine.run e in
  (final, Engine.processed e, Array.to_list acc)

let test_partition_determinism () =
  let base = run_token_storm ~domains:1 in
  let _, processed, _ = base in
  check_bool "the storm actually ran" true (processed > 100);
  List.iter
    (fun domains ->
      Alcotest.(check (triple int int (list int)))
        (Printf.sprintf "token storm identical at %d domains" domains)
        base
        (run_token_storm ~domains))
    [ 2; 4 ]

(* --- cross-partition NoC traffic: byte-identical event logs ---------- *)

(* Chained transfers over a fabric whose 8 nodes are spread across 4
   engine partitions: each delivery re-sends from its destination, so
   traffic keeps crossing partitions (transaction-level path) and
   bouncing within them (full link model). The merged observability
   log — link occupancies, transfer records, message ids — must be
   byte-identical for any domain count. *)
let run_fabric_storm ~domains =
  let parts = 4 and nodes = 8 in
  let e = Engine.create ~partitions:parts ~domains () in
  let part_of n = n mod parts in
  let fab =
    Fabric.create ~partition_of:part_of e (Topology.for_nodes nodes)
      ~config:Fabric.default_config
  in
  let obs = Obs.of_engine e in
  let mem = Obs.Memory.create () in
  Obs.attach obs (Obs.Memory.sink mem);
  Fabric.set_obs fab obs;
  let rec send ~src ~ttl =
    if ttl > 0 then begin
      let dst = (src + 1 + (ttl mod 5)) mod nodes in
      let dst = if dst = src then (dst + 1) mod nodes else dst in
      let msg = Obs.next_msg obs in
      Fabric.transfer ~msg fab ~src ~dst ~bytes:(64 * ttl) ~on_deliver:(fun () ->
          send ~src:dst ~ttl:(ttl - 1))
    end
  in
  for src = 0 to nodes - 1 do
    Engine.schedule_on e ~partition:(part_of src) ~time:src (fun () ->
        send ~src ~ttl:10)
  done;
  let final = Engine.run e in
  (final, Obs.Memory.count mem, Obs.Memory.to_string mem)

let test_fabric_determinism () =
  let f1, c1, log1 = run_fabric_storm ~domains:1 in
  check_bool "traffic was traced" true (c1 > 50);
  List.iter
    (fun domains ->
      let f, c, log = run_fabric_storm ~domains in
      check_int (Printf.sprintf "final cycle at %d domains" domains) f1 f;
      check_int (Printf.sprintf "event count at %d domains" domains) c1 c;
      check_bool
        (Printf.sprintf "event log byte-identical at %d domains" domains)
        true (String.equal log1 log))
    [ 2; 4 ]

(* --- full-system replicas: byte-identical event logs ------------------ *)

(* Each sim runs wholly inside one thunk on one domain, so the bus the
   observer hook hands out is parked in domain-local storage and read
   back by the same thunk. *)
let captured : Obs.Memory.mem option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_capture f =
  let prev = !Runner.observer in
  Runner.observer :=
    Some
      (fun o ->
        let m = Obs.Memory.create () in
        Obs.attach o (Obs.Memory.sink m);
        Domain.DLS.get captured := Some m);
  Fun.protect ~finally:(fun () -> Runner.observer := prev) f

let logged run () =
  let cell = Domain.DLS.get captured in
  cell := None;
  run ();
  match !cell with
  | Some m -> Obs.Memory.to_string m
  | None -> Alcotest.fail "observer hook did not fire"

(* A figS-style serving-pool sim: boot, pool bring-up, a short seeded
   open-loop burst, drain. *)
let figs_sim () =
  ignore
    (Runner.run_m3 ~pe_count:8 ~dram_mib:4 ~no_fs:true (fun env ~measured ->
         let schedule =
           M3_serve.Load.poisson
             ~rng:(M3_sim.Rng.create ~seed:42)
             ~mean_gap:500.0 ~count:16
             ~mix:(M3_serve.Load.pure (M3_serve.Wire.Echo 1000))
             ()
         in
         let pool =
           M3.Errno.ok_exn
             (M3_serve.Pool.start env
                (M3_serve.Pool.default_config ~name:"tpar" ~workers:2 ()))
         in
         measured (fun () ->
             ignore (M3_serve.Pool.run_open env pool ~schedule));
         M3.Errno.ok_exn (M3_serve.Pool.stop env pool)))

(* Seeded figS- and fig6x-style sims, replicated on 1, 2 and 4 domains:
   every replica's event log must be byte-identical to the sequential
   run's — concurrent sims must not leak into each other through any
   process-global table. *)
let test_replica_determinism () =
  with_capture (fun () ->
      let jobs =
        [
          logged (fun () -> ignore (Fig6x.warm_find_pass ~primed:false ()));
          logged (fun () -> ignore (Fig6x.warm_find_pass ~primed:true ()));
          logged figs_sim;
        ]
      in
      let base = Domainpool.run ~domains:1 jobs in
      List.iter
        (fun log ->
          check_bool "sequential logs are non-trivial" true
            (String.length log > 1000))
        base;
      List.iter
        (fun domains ->
          List.iteri
            (fun i (expect, got) ->
              check_bool
                (Printf.sprintf "sim %d log byte-identical at %d domains" i
                   domains)
                true (String.equal expect got))
            (List.combine base (Domainpool.run ~domains jobs)))
        [ 2; 4 ])

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "heap: popped slots are cleared" `Quick
          test_heap_no_pinning;
        QCheck_alcotest.to_alcotest qcheck_heap_oracle;
        Alcotest.test_case "engine ids are atomic across domains" `Quick
          test_engine_ids_atomic;
        Alcotest.test_case "domain pool keeps input order" `Quick
          test_domainpool_order;
        Alcotest.test_case "domain pool propagates errors" `Quick
          test_domainpool_errors;
        Alcotest.test_case "cross-partition lookahead is enforced" `Quick
          test_lookahead_enforced;
        Alcotest.test_case "partitioned engine: domain-count invariant" `Quick
          test_partition_determinism;
        Alcotest.test_case "cross-partition NoC: byte-identical logs" `Quick
          test_fabric_determinism;
        Alcotest.test_case "full-system replicas: byte-identical logs" `Slow
          test_replica_determinism;
      ] );
  ]
