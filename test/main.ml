let () =
  Alcotest.run "m3-repro"
    (Test_sim.suites @ Test_mem.suites @ Test_noc.suites @ Test_dtu.suites @ Test_dtu2.suites
   @ Test_hw.suites @ Test_os.suites @ Test_os2.suites @ Test_os3.suites @ Test_fs_image.suites
   @ Test_linux.suites @ Test_trace.suites @ Test_irq.suites
   @ Test_harness.suites @ Test_ablations.suites @ Test_obs.suites
   @ Test_fault.suites @ Test_crash.suites @ Test_shard.suites
   @ Test_serve.suites @ Test_sched.suites @ Test_fs_cache.suites
   @ Test_parallel.suites @ Test_load.suites @ Test_kv.suites)
