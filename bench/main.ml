(* Benchmark harness: regenerates every figure and inline-number table
   of the paper's evaluation (§5) in simulated cycles, then measures
   host-side simulator throughput with one Bechamel benchmark per
   experiment.

   Usage:
     dune exec bench/main.exe             # everything
     dune exec bench/main.exe fig3 fig5   # selected experiments
     dune exec bench/main.exe --no-bechamel
     dune exec bench/main.exe --bechamel-only
     dune exec bench/main.exe --quick     # CI smoke: one pass over the
                                          # scaled-down kernels, no bechamel
     dune exec bench/main.exe --quick --domains 4
                                          # same, running the warm-cache
                                          # kernel's independent sims on a
                                          # pool of 4 OCaml domains *)

open M3_harness

let ppf = Format.std_formatter

(* [--domains N]: host-side domain-pool width for kernels built from
   independent simulations (currently the warm-cache kernel's four
   passes). Pure execution-width knob — simulated results are
   bit-identical for any value. *)
let opt_domains = ref 1

let line () = Format.fprintf ppf "%s@." (String.make 78 '-')

(* Results are retained so that a full run can end with the
   reproduction verdict. *)
let results_fig3 = ref None
let results_fig4 = ref None
let results_fig5 = ref None
let results_fig6 = ref None
let results_fig6x = ref None
let results_fig7 = ref None
let results_figs = ref None
let results_t1 = ref None
let results_t2 = ref None

let keep cell v =
  cell := Some v;
  v

let run_fig3 ~quick:_ = Fig3.print ppf (keep results_fig3 (Fig3.run ()))
let run_fig4 ~quick:_ = Fig4.print ppf (keep results_fig4 (Fig4.run ()))
let run_fig5 ~quick:_ = Fig5.print ppf (keep results_fig5 (Fig5.run ()))
let run_fig6 ~quick:_ = Fig6.print ppf (keep results_fig6 (Fig6.run ()))

let run_fig6x ~quick =
  Fig6x.print ppf (keep results_fig6x (Fig6x.run ~quick ()))

let run_fig7 ~quick:_ = Fig7.print ppf (keep results_fig7 (Fig7.run ()))
let run_figs ~quick = Figs.print ppf (keep results_figs (Figs.run ~quick ()))
let run_t1 ~quick:_ = Tables.print_t1 ppf (keep results_t1 (Tables.run_t1 ()))
let run_t2 ~quick:_ = Tables.print_t2 ppf (keep results_t2 (Tables.run_t2 ()))
let run_ablations ~quick:_ = Ablations.print ppf (Ablations.run ())

let run_verdict () =
  let verdicts =
    Report.validate ?fig3:!results_fig3 ?fig4:!results_fig4 ?fig5:!results_fig5
      ?fig6:!results_fig6 ?fig7:!results_fig7 ?t1:!results_t1 ?t2:!results_t2
      ()
  in
  if verdicts <> [] then Report.print ppf verdicts

(* The sweep experiments (fig6x, figS) honor [--quick]; the rest are
   already CI-sized and ignore it. *)
let experiments =
  [
    ("fig3", run_fig3);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("fig6x", run_fig6x);
    ("fig7", run_fig7);
    ("figS", run_figs);
    ("t1", run_t1);
    ("t2", run_t2);
    ("ablations", run_ablations);
  ]

(* --- host-side throughput benchmarks (one per experiment) -------------- *)

(* Scaled-down kernels so Bechamel can sample them repeatedly: each runs
   a complete simulation from boot. *)

let kernel_fig3 () =
  ignore
    (Runner.run_m3 ~pe_count:4 ~dram_mib:4 ~no_fs:true (fun env ~measured ->
         measured (fun () -> M3.Errno.ok_exn (M3.Syscalls.noop env))))

let small_file_seed =
  [
    { M3.M3fs.sd_path = "/small"; sd_size = 256 * 1024;
      sd_blocks_per_extent = 64; sd_dir = false };
  ]

let kernel_fig4 () =
  ignore
    (Runner.run_m3 ~pe_count:4 ~dram_mib:8 ~seeds:small_file_seed (fun env ~measured ->
         Runner.mounted env;
         let buf = M3.Env.alloc_spm env ~size:4096 in
         let file =
           M3.Errno.ok_exn (M3.Vfs.open_ env "/small" ~flags:M3.Fs_proto.o_read)
         in
         measured (fun () ->
             let rec drain () =
               match
                 M3.Errno.ok_exn (M3.File.read env file ~local:buf ~len:4096)
               with
               | 0 -> ()
               | _ -> drain ()
             in
             drain ())))

let kernel_fig5 () =
  let spec = M3_trace.Workloads.find ~seed:1 in
  ignore
    (Runner.run_m3 ~pe_count:4 ~dram_mib:8 ~seeds:spec.M3_trace.Workloads.sp_seeds
       (fun env ~measured ->
         Runner.mounted env;
         measured (fun () ->
             match M3_trace.Replay_m3.run env spec.M3_trace.Workloads.sp_trace with
             | Ok () -> ()
             | Error e -> failwith (M3.Errno.to_string e))))

(* A small two-VPE pipe transfer (the cat+tr communication pattern). *)
let kernel_fig6 () =
  ignore
    (Runner.run_m3 ~pe_count:4 ~dram_mib:4 ~no_fs:true (fun env ~measured ->
         let ok = M3.Errno.ok_exn in
         let reader = ok (M3.Pipe.create_reader env ~ring_size:8192) in
         let vpe =
           ok
             (M3.Vpe_api.create env ~name:"w"
                ~core:M3_hw.Core_type.General_purpose)
         in
         ok
           (M3.Pipe.delegate_writer_end env reader
              ~vpe_sel:vpe.M3.Vpe_api.vpe_sel);
         ok
           (M3.Vpe_api.run env vpe (fun cenv ->
                let w = ok (M3.Pipe.connect_writer cenv ~ring_size:8192) in
                let buf = M3.Env.alloc_spm cenv ~size:2048 in
                for _ = 1 to 16 do
                  ok (M3.Pipe.write cenv w ~local:buf ~len:2048)
                done;
                ok (M3.Pipe.close_writer cenv w);
                0));
         let buf = M3.Env.alloc_spm env ~size:2048 in
         measured (fun () ->
             let rec drain () =
               match ok (M3.Pipe.read env reader ~local:buf ~len:2048) with
               | 0 -> ()
               | _ -> drain ()
             in
             drain ());
         ignore (M3.Vpe_api.wait env vpe)))

(* A small serving pool under a short open-loop burst: boot, pool
   bring-up, batching dispatch and drain, end to end. *)
let kernel_figs () =
  ignore
    (Runner.run_m3 ~pe_count:8 ~dram_mib:4 ~no_fs:true (fun env ~measured ->
         let schedule =
           M3_serve.Load.poisson
             ~rng:(M3_sim.Rng.create ~seed:42)
             ~mean_gap:500.0 ~count:32
             ~mix:(M3_serve.Load.pure (M3_serve.Wire.Echo 1000)) ()
         in
         let pool =
           M3.Errno.ok_exn
             (M3_serve.Pool.start env
                (M3_serve.Pool.default_config ~name:"bench" ~workers:2 ()))
         in
         measured (fun () ->
             ignore (M3_serve.Pool.run_open env pool ~schedule));
         M3.Errno.ok_exn (M3_serve.Pool.stop env pool)))

(* The scheduler pipeline end to end: an elastic pool parks its spare
   seats at startup, a burst wakes them through suspend/resume, and
   the drain parks them again. *)
let kernel_sched () =
  ignore
    (Runner.run_m3 ~pe_count:8 ~dram_mib:4 ~no_fs:true ~sched:true
       (fun env ~measured ->
         let schedule =
           M3_serve.Load.poisson
             ~rng:(M3_sim.Rng.create ~seed:43)
             ~mean_gap:250.0 ~count:32
             ~mix:(M3_serve.Load.pure (M3_serve.Wire.Echo 1000)) ()
         in
         let cfg =
           M3_serve.Pool.default_config ~name:"bsched" ~min_workers:1
             ~workers:3 ()
         in
         let cfg = { cfg with M3_serve.Pool.grow_depth = 2; scale_cooldown = 5_000 } in
         let pool = M3.Errno.ok_exn (M3_serve.Pool.start env cfg) in
         measured (fun () ->
             ignore (M3_serve.Pool.run_open env pool ~schedule));
         M3.Errno.ok_exn (M3_serve.Pool.stop env pool)))

let kernel_fig7 () =
  let points = 2048 in
  let re = Array.init points (fun i -> float_of_int (i mod 7)) in
  let im = Array.make points 0.0 in
  M3_hw.Fft.transform re im

(* Warm-cache smoke: the fig3 warm-read and fig6x warm-find cells with
   their >= 1.5x fewer-round-trips gates enforced — a gate violation
   fails the kernel (and the CI job). The measured cells are retained
   so the cache hit rate lands in BENCH_results.json. *)
let results_warm_read = ref None
let results_warm_find = ref None

(* The four passes (fig3 cold/warm, fig6x cold/warm) are complete,
   independent systems, so the whole kernel fans out over one domain
   pool — the host-speedup measurement below runs it at 1 and 4
   domains and the results are bit-identical. *)
let kernel_warm_cache_at ~domains () =
  let f3_cold = ref None and f3_warm = ref None in
  let f6_cold = ref None and f6_warm = ref None in
  ignore
    (M3_sim.Domainpool.run ~domains
       [
         (fun () -> f3_cold := Some (Fig3.warm_read_pass ~primed:false ()));
         (fun () -> f3_warm := Some (Fig3.warm_read_pass ~primed:true ()));
         (fun () -> f6_cold := Some (Fig6x.warm_find_pass ~primed:false ()));
         (fun () -> f6_warm := Some (Fig6x.warm_find_pass ~primed:true ()));
       ]);
  let get r = match !r with Some v -> v | None -> assert false in
  let cold, cold_rt = get f3_cold and warm, warm_rt = get f3_warm in
  let wr =
    { Fig3.w_cold = cold; w_warm = warm; w_cold_rt = cold_rt;
      w_warm_rt = warm_rt }
  in
  results_warm_read := Some wr;
  if not (Fig3.warm_cell_ok wr) then
    failwith
      (Printf.sprintf
         "warm read gate: cold %d -> warm %d service round-trips (need >= \
          1.5x fewer)"
         wr.Fig3.w_cold_rt wr.Fig3.w_warm_rt);
  let wf_cold, wf_cold_rt, _, _ = get f6_cold in
  let wf_warm, wf_warm_rt, hits, misses = get f6_warm in
  let wf =
    {
      Fig6x.wf_cold;
      wf_warm;
      wf_cold_rt;
      wf_warm_rt;
      wf_hit_rate =
        (if hits + misses = 0 then 0.0
         else float_of_int hits /. float_of_int (hits + misses));
    }
  in
  results_warm_find := Some wf;
  if not (Fig6x.warm_find_ok wf) then
    failwith
      (Printf.sprintf
         "warm find gate: cold %d -> warm %d service round-trips (need >= \
          1.5x fewer)"
         wf.Fig6x.wf_cold_rt wf.Fig6x.wf_warm_rt)

let kernel_warm_cache () = kernel_warm_cache_at ~domains:!opt_domains ()

(* Gateway smoke with its gates enforced: a single-seat breaker pool
   under an injected stall must trip, fast-fail at least one request
   while open, recover through a half-open probe and fail nothing (the
   stalled batch's late reply is harvested); a token bucket in front
   of a two-client mix must shed the flooding client. A gate violation
   fails the kernel (and the CI job). The counters are retained so the
   gateway block lands in BENCH_results.json. *)
let results_gateway = ref None

let kernel_gateway () =
  let brk = ref None in
  ignore
    (Runner.run_m3 ~pe_count:8 ~dram_mib:4 ~no_fs:true (fun env ~measured ->
         let schedule =
           M3_serve.Load.poisson
             ~rng:(M3_sim.Rng.create ~seed:51)
             ~mean_gap:2_500.0 ~count:60
             ~mix:(M3_serve.Load.pure (M3_serve.Wire.Echo 2000)) ()
         in
         (* Poison one request: the first App execution stalls past the
            watchdog, everything after runs at normal speed. *)
         schedule.(5) <-
           {
             (schedule.(5)) with
             M3_serve.Load.req =
               {
                 schedule.(5).M3_serve.Load.req with
                 M3_serve.Wire.rk = M3_serve.Wire.App 1;
               };
           };
         let stalled = ref false in
         let cfg =
           {
             (M3_serve.Pool.default_config ~name:"gwb" ~workers:1 ()) with
             M3_serve.Pool.watchdog = 30_000;
             gateway =
               Some
                 (M3_serve.Gateway.config
                    ~breaker:(M3_serve.Gateway.breaker ~cooldown:50_000 ())
                    ());
             app =
               Some
                 (fun _ ->
                   if !stalled then 500
                   else begin
                     stalled := true;
                     60_000
                   end);
           }
         in
         let pool = M3.Errno.ok_exn (M3_serve.Pool.start env cfg) in
         measured (fun () ->
             let cr = M3_serve.Pool.run_open env pool ~schedule in
             brk := Some (cr, M3_serve.Pool.stats pool));
         M3.Errno.ok_exn (M3_serve.Pool.stop env pool)));
  let bkt = ref None in
  ignore
    (Runner.run_m3 ~pe_count:8 ~dram_mib:4 ~no_fs:true (fun env ~measured ->
         let wb =
           M3_serve.Load.poisson
             ~rng:(M3_sim.Rng.create ~seed:52)
             ~clients:(fun rng -> 1 + M3_serve.Load.uniform_clients ~n:2 rng)
             ~mean_gap:1_500.0 ~count:40
             ~mix:(M3_serve.Load.pure (M3_serve.Wire.Echo 1000)) ()
         in
         let hot =
           M3_serve.Load.poisson
             ~rng:(M3_sim.Rng.create ~seed:53)
             ~clients:(fun _ -> 0)
             ~mean_gap:200.0 ~count:40
             ~mix:(M3_serve.Load.pure (M3_serve.Wire.Echo 1000)) ()
         in
         let all = Array.append wb hot in
         Array.stable_sort
           (fun a b -> compare a.M3_serve.Load.at b.M3_serve.Load.at)
           all;
         let schedule =
           Array.mapi
             (fun i a ->
               {
                 a with
                 M3_serve.Load.req =
                   { a.M3_serve.Load.req with M3_serve.Wire.seq = i };
               })
             all
         in
         let cfg =
           {
             (M3_serve.Pool.default_config ~name:"gwt" ~workers:2 ()) with
             M3_serve.Pool.gateway =
               Some
                 (M3_serve.Gateway.config
                    ~bucket:(M3_serve.Gateway.bucket ~refill:2_000 ())
                    ());
           }
         in
         let pool = M3.Errno.ok_exn (M3_serve.Pool.start env cfg) in
         measured (fun () ->
             let cr = M3_serve.Pool.run_open env pool ~schedule in
             bkt := Some (cr, M3_serve.Pool.stats pool));
         M3.Errno.ok_exn (M3_serve.Pool.stop env pool)));
  match (!brk, !bkt) with
  | Some (bcr, bst), Some (tcr, tst) ->
    if
      bst.M3_serve.Pool.p_trips < 1
      || bst.M3_serve.Pool.p_probes < 1
      || bst.M3_serve.Pool.p_closes < 1
    then
      failwith
        (Printf.sprintf
           "gateway breaker gate: %d trip(s), %d probe(s), %d close(s) (need \
            a full trip/probe/close cycle)"
           bst.M3_serve.Pool.p_trips bst.M3_serve.Pool.p_probes
           bst.M3_serve.Pool.p_closes);
    if bcr.M3_serve.Pool.cr_unavail < 1 then
      failwith "gateway breaker gate: nothing fast-failed while open";
    if bst.M3_serve.Pool.p_deduped < 1 then
      failwith "gateway breaker gate: the stalled batch was never harvested";
    if bcr.M3_serve.Pool.cr_failed > 0 then
      failwith
        (Printf.sprintf "gateway breaker gate: %d request(s) failed"
           bcr.M3_serve.Pool.cr_failed);
    if tst.M3_serve.Pool.p_throttled < 1 then
      failwith "gateway bucket gate: the flood was never throttled";
    if tcr.M3_serve.Pool.cr_failed > 0 then
      failwith
        (Printf.sprintf "gateway bucket gate: %d request(s) failed"
           tcr.M3_serve.Pool.cr_failed);
    results_gateway := Some (bcr, bst, tcr, tst)
  | _ -> failwith "gateway kernel: a pool run produced no result"

(* KV-tier smoke with its gates enforced: one capacity-grid point of
   Fig. S2 — a Zipfian read-leaning stream against a 2-shard store —
   must complete every request, fail none, and hit the mount cache
   (the store routes reads through Vfs, so zero hits would mean the
   cache tier fell out of the path). The point is retained so the kv
   block lands in BENCH_results.json. *)
let results_kv = ref None

let kv_requests = 48

let kernel_kv () =
  let p =
    Figs2.capacity_cell ~keys:32 ~requests:kv_requests ~seed:0xBE2C ~shards:2
      ~reads:3 ~writes:1
  in
  if p.Figs2.c_failed > 0 then
    failwith
      (Printf.sprintf "kv gate: %d request(s) failed" p.Figs2.c_failed);
  if p.Figs2.c_completed <> kv_requests then
    failwith
      (Printf.sprintf "kv gate: %d of %d requests completed"
         p.Figs2.c_completed kv_requests);
  if p.Figs2.c_cache_hits <= 0 then
    failwith "kv gate: the mount cache never hit (reads bypassed the cache)";
  results_kv := Some p

let kernel_t1 () = kernel_fig3 ()

let kernel_t2 () =
  ignore
    (Runner.run_linux (fun m ->
         match M3_linux.Machine.open_file m "/x" ~create:true ~trunc:true with
         | None -> ()
         | Some fd ->
           for _ = 1 to 64 do
             ignore (M3_linux.Machine.write m fd 4096)
           done))

let bechamel_tests =
  let open Bechamel in
  [
    Test.make ~name:"fig3/null-syscall-sim" (Staged.stage kernel_fig3);
    Test.make ~name:"fig4/fragmented-read-sim" (Staged.stage kernel_fig4);
    Test.make ~name:"fig5/find-replay-sim" (Staged.stage kernel_fig5);
    Test.make ~name:"fig6/cat-tr-2pe-sim" (Staged.stage kernel_fig6);
    Test.make ~name:"fig7/fft-2048" (Staged.stage kernel_fig7);
    Test.make ~name:"figS/serve-pool-sim" (Staged.stage kernel_figs);
    Test.make ~name:"sched/elastic-pool-sim" (Staged.stage kernel_sched);
    Test.make ~name:"t1/null-syscall-sim" (Staged.stage kernel_t1);
    Test.make ~name:"t2/linux-create-model" (Staged.stage kernel_t2);
  ]

(* --- machine-readable results (BENCH_results.json) --------------------- *)

let jstr s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let jobj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

let jarr items = "[" ^ String.concat "," items ^ "]"

let jfloat f = if Float.is_nan f then "null" else Printf.sprintf "%.6f" f

let measure_json (m : Runner.measure) =
  jobj
    [
      ("cycles", string_of_int m.Runner.m_cycles);
      ("app", string_of_int m.Runner.m_app);
      ("os", string_of_int m.Runner.m_os);
      ("xfer", string_of_int m.Runner.m_xfer);
    ]

let bars_json (b : Fig3.bars) =
  jobj
    [
      ("m3", measure_json b.Fig3.m3);
      ("lx_ideal", measure_json b.Fig3.lx_ideal);
      ("lx", measure_json b.Fig3.lx);
    ]

let experiments_json () =
  let opt name f cell acc =
    match !cell with Some v -> (name, f v) :: acc | None -> acc
  in
  []
  |> opt "fig3"
       (fun (t : Fig3.t) ->
         jobj
           [
             ("syscall", bars_json t.Fig3.syscall);
             ("read", bars_json t.Fig3.read);
             ("write", bars_json t.Fig3.write);
             ("pipe", bars_json t.Fig3.pipe);
             ( "warm_read",
               jobj
                 [
                   ("cold", measure_json t.Fig3.warm_read.Fig3.w_cold);
                   ("warm", measure_json t.Fig3.warm_read.Fig3.w_warm);
                   ( "cold_round_trips",
                     string_of_int t.Fig3.warm_read.Fig3.w_cold_rt );
                   ( "warm_round_trips",
                     string_of_int t.Fig3.warm_read.Fig3.w_warm_rt );
                   ("pass", if Fig3.warm_ok t then "true" else "false");
                 ] );
           ])
       results_fig3
  |> opt "fig4"
       (fun points ->
         jarr
           (List.map
              (fun (p : Fig4.point) ->
                jobj
                  [
                    ( "blocks_per_extent",
                      string_of_int p.Fig4.blocks_per_extent );
                    ("read", measure_json p.Fig4.read);
                  ])
              points))
       results_fig4
  |> opt "fig5"
       (fun rows ->
         jarr
           (List.map
              (fun (r : Fig5.row) ->
                jobj
                  [
                    ("name", jstr r.Fig5.name);
                    ("m3", measure_json r.Fig5.m3);
                    ("lx_ideal", measure_json r.Fig5.lx_ideal);
                    ("lx", measure_json r.Fig5.lx);
                  ])
              rows))
       results_fig5
  |> opt "fig6"
       (fun curves ->
         jarr
           (List.map
              (fun (c : Fig6.curve) ->
                jobj
                  [
                    ("bench", jstr c.Fig6.bench);
                    ( "points",
                      jarr
                        (List.map
                           (fun (p : Fig6.point) ->
                             jobj
                               [
                                 ("instances", string_of_int p.Fig6.instances);
                                 ("normalized", jfloat p.Fig6.normalized);
                               ])
                           c.Fig6.points) );
                  ])
              curves))
       results_fig6
  |> opt "fig6x" Fig6x.to_json results_fig6x
  |> opt "fig7"
       (fun (t : Fig7.t) ->
         jobj
           [
             ("linux", measure_json t.Fig7.linux);
             ("m3_software", measure_json t.Fig7.m3_software);
             ("m3_accel", measure_json t.Fig7.m3_accel);
           ])
       results_fig7
  |> opt "figS" Figs.to_json results_figs
  |> opt "gateway"
       (fun (bcr, bst, tcr, tst) ->
         jobj
           [
             ( "breaker",
               jobj
                 [
                   ("trips", string_of_int bst.M3_serve.Pool.p_trips);
                   ("probes", string_of_int bst.M3_serve.Pool.p_probes);
                   ("closes", string_of_int bst.M3_serve.Pool.p_closes);
                   ("fast_failed", string_of_int bcr.M3_serve.Pool.cr_unavail);
                   ("harvested", string_of_int bst.M3_serve.Pool.p_deduped);
                   ("failed", string_of_int bcr.M3_serve.Pool.cr_failed);
                   ("completed", string_of_int bcr.M3_serve.Pool.cr_completed);
                   ("sent", string_of_int bcr.M3_serve.Pool.cr_sent);
                 ] );
             ( "bucket",
               jobj
                 [
                   ("throttled", string_of_int tst.M3_serve.Pool.p_throttled);
                   ("failed", string_of_int tcr.M3_serve.Pool.cr_failed);
                   ("completed", string_of_int tcr.M3_serve.Pool.cr_completed);
                   ("sent", string_of_int tcr.M3_serve.Pool.cr_sent);
                 ] );
           ])
       results_gateway
  |> opt "kv"
       (fun (p : Figs2.capacity_point) ->
         jobj
           [
             ("shards", string_of_int p.Figs2.c_shards);
             ("mix", jstr p.Figs2.c_mix);
             ("p50", jfloat p.Figs2.c_p50);
             ("p99", jfloat p.Figs2.c_p99);
             ("completed", string_of_int p.Figs2.c_completed);
             ("failed", string_of_int p.Figs2.c_failed);
             ("cache_hits", string_of_int p.Figs2.c_cache_hits);
             ("cache_misses", string_of_int p.Figs2.c_cache_misses);
             ("cache_invals", string_of_int p.Figs2.c_cache_invals);
             ("kept", string_of_int p.Figs2.c_kept);
             ("dup_skips", string_of_int p.Figs2.c_dup_skips);
           ])
       results_kv
  |> opt "t1"
       (fun (t : Tables.t1) ->
         jobj
           [
             ("m3_total", string_of_int t.Tables.m3_total);
             ("m3_xfer", string_of_int t.Tables.m3_xfer);
             ("m3_other", string_of_int t.Tables.m3_other);
             ("lx_total", string_of_int t.Tables.lx_total);
           ])
       results_t1
  |> opt "t2"
       (fun rows ->
         jarr
           (List.map
              (fun (r : Tables.arch_row) ->
                jobj
                  [
                    ("arch", jstr r.Tables.arch);
                    ("syscall", string_of_int r.Tables.syscall);
                    ("create_overhead", string_of_int r.Tables.create_overhead);
                    ("copy_overhead", string_of_int r.Tables.copy_overhead);
                  ])
              rows))
       results_t2
  |> List.rev

(* Cache hit-rate and round-trip savings of the warm-cache cells, when
   they ran (quick smoke, or a full fig3/fig6x pass). *)
let warm_cache_json () =
  let wr =
    match (!results_warm_read, !results_fig3) with
    | Some w, _ -> Some w
    | None, Some t -> Some t.Fig3.warm_read
    | None, None -> None
  in
  let wf =
    match (!results_warm_find, !results_fig6x) with
    | Some w, _ -> Some w
    | None, Some t -> Some t.Fig6x.r_warm
    | None, None -> None
  in
  let cell name json = function Some v -> [ (name, json v) ] | None -> [] in
  match (wr, wf) with
  | None, None -> []
  | _ ->
    [
      ( "warm_cache",
        jobj
          (cell "read"
             (fun (w : Fig3.warm_cell) ->
               jobj
                 [
                   ("cold_round_trips", string_of_int w.Fig3.w_cold_rt);
                   ("warm_round_trips", string_of_int w.Fig3.w_warm_rt);
                   ("pass", if Fig3.warm_cell_ok w then "true" else "false");
                 ])
             wr
          @ cell "find"
              (fun (w : Fig6x.warm_find) ->
                jobj
                  [
                    ("cold_round_trips", string_of_int w.Fig6x.wf_cold_rt);
                    ("warm_round_trips", string_of_int w.Fig6x.wf_warm_rt);
                    ("hit_rate", jfloat w.Fig6x.wf_hit_rate);
                    ("pass", if Fig6x.warm_find_ok w then "true" else "false");
                  ])
              wf) );
    ]

(* Host-side speedup of the warm-cache kernel on a domain pool,
   measured by the quick smoke: wall ms at 1 and 4 domains. On a
   single-core host the two are expected to tie — [host_cores] is
   recorded so consumers (CI) can decide whether a speedup gate is
   meaningful. *)
let results_host_parallel = ref None

let host_parallel_json () =
  match !results_host_parallel with
  | None -> []
  | Some (ms1, ms4) ->
    [
      ( "host_parallel",
        jobj
          [
            ("kernel", jstr "cache/warm-read-find-sim");
            ("host_ms_domains_1", jfloat ms1);
            ("host_ms_domains_4", jfloat ms4);
            ("speedup", jfloat (if ms4 > 0.0 then ms1 /. ms4 else 0.0));
            ("host_cores", string_of_int (Domain.recommended_domain_count ()));
          ] );
    ]

let write_results_json ~bechamel_rows path =
  let fields =
    [
      ("schema", jstr "m3-repro-bench/1");
      ("simulated", jobj (experiments_json ()));
    ]
    @ warm_cache_json ()
    @ host_parallel_json ()
    @ [
      ( "host_ms_per_run",
        jobj
          (List.map
             (fun (name, ns) -> (name, jfloat (ns /. 1e6)))
             (List.sort compare bechamel_rows)) );
    ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (jobj fields);
      output_char oc '\n');
  Format.fprintf ppf "machine-readable results written to %s@." path

(* --- quick smoke (CI) --------------------------------------------------- *)

(* One pass over each scaled-down kernel: exercises boot, the
   filesystem, trace replay, pipes, the FFT model and the VPE
   scheduler end-to-end in a few seconds, without bechamel's repeated
   sampling or the full-size figure runs. Each kernel's host
   wall-clock is recorded so even CI runs leave a host-perf
   trajectory in [BENCH_results.json]. Returns [(name, ns)] rows in
   the same shape as {!run_bechamel}. *)
let run_quick () =
  let kernels =
    [
      ("fig3/null-syscall-sim", kernel_fig3);
      ("fig4/fragmented-read-sim", kernel_fig4);
      ("fig5/find-replay-sim", kernel_fig5);
      ("fig6/cat-tr-2pe-sim", kernel_fig6);
      ("fig7/fft-2048", kernel_fig7);
      ("figS/serve-pool-sim", kernel_figs);
      ("sched/elastic-pool-sim", kernel_sched);
      ("cache/warm-read-find-sim", kernel_warm_cache);
      ("gateway/breaker-bucket-sim", kernel_gateway);
      ("kv/sharded-store-sim", kernel_kv);
      ("t2/linux-create-model", kernel_t2);
    ]
  in
  Format.fprintf ppf "Quick smoke: one pass per benchmark kernel@.";
  let rows =
    List.map
      (fun (name, f) ->
        let t0 = Unix.gettimeofday () in
        f ();
        let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
        Format.fprintf ppf "  %-40s ok  %10.3f ms@." name ms;
        (name, ms *. 1e6))
      kernels
  in
  Format.fprintf ppf "quick smoke passed (%d kernels)@." (List.length kernels);
  (* Host-speedup trajectory: the warm-cache kernel once more at 1 and
     4 domains (simulated results are bit-identical; only host wall
     time differs). *)
  let time_warm domains =
    let t0 = Unix.gettimeofday () in
    kernel_warm_cache_at ~domains ();
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  let ms1 = time_warm 1 in
  let ms4 = time_warm 4 in
  results_host_parallel := Some (ms1, ms4);
  Format.fprintf ppf
    "  warm-cache host speedup: %.3f ms @ 1 domain, %.3f ms @ 4 domains \
     (%.2fx, %d host cores)@."
    ms1 ms4
    (if ms4 > 0.0 then ms1 /. ms4 else 0.0)
    (Domain.recommended_domain_count ());
  rows

(* --- bechamel ---------------------------------------------------------- *)

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  (* The figure runs above leave a large major heap (multi-MiB DRAM
     stores); compact so the throughput numbers are not GC artifacts. *)
  Gc.compact ();
  Format.fprintf ppf
    "Bechamel: host-side simulator throughput (one benchmark per \
     experiment)@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"m3-repro" bechamel_tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | Some [] | None -> nan
        in
        (name, estimate) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) ->
      Format.fprintf ppf "  %-40s %12.3f ms/run@." name (ns /. 1e6))
    (List.sort compare rows);
  rows

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Strip [--domains N] (flag + value) before positional parsing. *)
  let rec strip_domains = function
    | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some d when d >= 1 -> opt_domains := d
      | Some _ | None ->
        prerr_endline "bench: --domains expects a positive integer";
        exit 2);
      strip_domains rest
    | a :: rest -> a :: strip_domains rest
    | [] -> []
  in
  let args = strip_domains args in
  let quick = List.mem "--quick" args in
  let no_bechamel = List.mem "--no-bechamel" args in
  let bechamel_only = List.mem "--bechamel-only" args in
  let wanted =
    List.filter (fun a -> not (String.length a > 2 && a.[0] = '-')) args
  in
  (* Bare [--quick] is the CI smoke: one pass per kernel, nothing
     else. With experiments named, [--quick] instead shrinks their
     sweeps (fig6x, figS). *)
  if quick && wanted = [] then begin
    let rows = run_quick () in
    write_results_json ~bechamel_rows:rows "BENCH_results.json";
    exit 0
  end;
  if not bechamel_only then begin
    Format.fprintf ppf
      "M3 reproduction — paper evaluation tables (simulated cycles)@.";
    line ();
    List.iter
      (fun (name, f) ->
        if wanted = [] || List.mem name wanted then begin
          f ~quick;
          line ()
        end)
      experiments;
    run_verdict ();
    line ()
  end;
  let bechamel_rows =
    if (not no_bechamel) && (wanted = [] || bechamel_only) then run_bechamel ()
    else []
  in
  write_results_json ~bechamel_rows "BENCH_results.json"
